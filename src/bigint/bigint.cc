#include "bigint/bigint.h"

#include <algorithm>
#include <cctype>

#include "common/logging.h"

namespace vf2boost {

namespace {

using u128 = unsigned __int128;

// Karatsuba pays off above this operand size (limbs). 4096-bit Paillier
// ciphertext squares are 64 limbs, so deep recursion is rare.
constexpr size_t kKaratsubaThreshold = 24;

// Largest power of ten that fits in a uint64 (10^19).
constexpr uint64_t kDecChunkBase = 10000000000000000000ULL;
constexpr int kDecChunkDigits = 19;

void TrimZeros(std::vector<uint64_t>* v) {
  while (!v->empty() && v->back() == 0) v->pop_back();
}

int CompareMag(const std::vector<uint64_t>& a, const std::vector<uint64_t>& b) {
  if (a.size() != b.size()) return a.size() < b.size() ? -1 : 1;
  for (size_t i = a.size(); i-- > 0;) {
    if (a[i] != b[i]) return a[i] < b[i] ? -1 : 1;
  }
  return 0;
}

// Schoolbook multiply: out (must be zeroed, size >= an+bn) += a * b.
void MulSchoolbook(const uint64_t* a, size_t an, const uint64_t* b, size_t bn,
                   uint64_t* out) {
  for (size_t i = 0; i < an; ++i) {
    uint64_t carry = 0;
    const u128 ai = a[i];
    for (size_t j = 0; j < bn; ++j) {
      u128 cur = ai * b[j] + out[i + j] + carry;
      out[i + j] = static_cast<uint64_t>(cur);
      carry = static_cast<uint64_t>(cur >> 64);
    }
    out[i + bn] += carry;
  }
}

// out = a + b, both little-endian raw vectors.
std::vector<uint64_t> AddRaw(const std::vector<uint64_t>& a,
                             const std::vector<uint64_t>& b) {
  const std::vector<uint64_t>& big = a.size() >= b.size() ? a : b;
  const std::vector<uint64_t>& small = a.size() >= b.size() ? b : a;
  std::vector<uint64_t> out(big.size() + 1, 0);
  uint64_t carry = 0;
  size_t i = 0;
  for (; i < small.size(); ++i) {
    u128 cur = static_cast<u128>(big[i]) + small[i] + carry;
    out[i] = static_cast<uint64_t>(cur);
    carry = static_cast<uint64_t>(cur >> 64);
  }
  for (; i < big.size(); ++i) {
    u128 cur = static_cast<u128>(big[i]) + carry;
    out[i] = static_cast<uint64_t>(cur);
    carry = static_cast<uint64_t>(cur >> 64);
  }
  out[big.size()] = carry;
  TrimZeros(&out);
  return out;
}

// out = a - b; requires a >= b (magnitudes).
std::vector<uint64_t> SubRaw(const std::vector<uint64_t>& a,
                             const std::vector<uint64_t>& b) {
  std::vector<uint64_t> out(a.size(), 0);
  uint64_t borrow = 0;
  for (size_t i = 0; i < a.size(); ++i) {
    uint64_t bi = i < b.size() ? b[i] : 0;
    u128 cur = static_cast<u128>(a[i]) - bi - borrow;
    out[i] = static_cast<uint64_t>(cur);
    borrow = (cur >> 64) ? 1 : 0;  // wrapped => borrow
  }
  VF2_DCHECK(borrow == 0);
  TrimZeros(&out);
  return out;
}

std::vector<uint64_t> MulRaw(const std::vector<uint64_t>& a,
                             const std::vector<uint64_t>& b);

// Karatsuba split at `half` limbs.
std::vector<uint64_t> MulKaratsuba(const std::vector<uint64_t>& a,
                                   const std::vector<uint64_t>& b) {
  const size_t half = std::max(a.size(), b.size()) / 2;
  auto lo = [half](const std::vector<uint64_t>& v) {
    std::vector<uint64_t> r(v.begin(),
                            v.begin() + std::min(half, v.size()));
    TrimZeros(&r);
    return r;
  };
  auto hi = [half](const std::vector<uint64_t>& v) {
    if (v.size() <= half) return std::vector<uint64_t>();
    return std::vector<uint64_t>(v.begin() + half, v.end());
  };

  std::vector<uint64_t> a0 = lo(a), a1 = hi(a);
  std::vector<uint64_t> b0 = lo(b), b1 = hi(b);

  std::vector<uint64_t> z0 = MulRaw(a0, b0);
  std::vector<uint64_t> z2 = MulRaw(a1, b1);
  std::vector<uint64_t> z1 = MulRaw(AddRaw(a0, a1), AddRaw(b0, b1));
  z1 = SubRaw(z1, AddRaw(z0, z2));

  // result = z0 + (z1 << 64*half) + (z2 << 128*half)
  std::vector<uint64_t> out(std::max({z0.size(), z1.size() + half,
                                      z2.size() + 2 * half}) +
                                1,
                            0);
  auto add_at = [&out](const std::vector<uint64_t>& v, size_t off) {
    uint64_t carry = 0;
    size_t i = 0;
    for (; i < v.size(); ++i) {
      u128 cur = static_cast<u128>(out[off + i]) + v[i] + carry;
      out[off + i] = static_cast<uint64_t>(cur);
      carry = static_cast<uint64_t>(cur >> 64);
    }
    while (carry) {
      u128 cur = static_cast<u128>(out[off + i]) + carry;
      out[off + i] = static_cast<uint64_t>(cur);
      carry = static_cast<uint64_t>(cur >> 64);
      ++i;
    }
  };
  add_at(z0, 0);
  add_at(z1, half);
  add_at(z2, 2 * half);
  TrimZeros(&out);
  return out;
}

std::vector<uint64_t> MulRaw(const std::vector<uint64_t>& a,
                             const std::vector<uint64_t>& b) {
  if (a.empty() || b.empty()) return {};
  if (std::min(a.size(), b.size()) >= kKaratsubaThreshold) {
    return MulKaratsuba(a, b);
  }
  std::vector<uint64_t> out(a.size() + b.size(), 0);
  MulSchoolbook(a.data(), a.size(), b.data(), b.size(), out.data());
  TrimZeros(&out);
  return out;
}

// Single-limb divide: q = u / d, returns remainder. d != 0.
uint64_t DivModSingle(const std::vector<uint64_t>& u, uint64_t d,
                      std::vector<uint64_t>* q) {
  q->assign(u.size(), 0);
  u128 rem = 0;
  for (size_t i = u.size(); i-- > 0;) {
    u128 cur = (rem << 64) | u[i];
    (*q)[i] = static_cast<uint64_t>(cur / d);
    rem = cur % d;
  }
  TrimZeros(q);
  return static_cast<uint64_t>(rem);
}

// Knuth algorithm D. u / v with v.size() >= 2, |u| >= |v|.
void DivModKnuth(const std::vector<uint64_t>& u, const std::vector<uint64_t>& v,
                 std::vector<uint64_t>* q, std::vector<uint64_t>* r) {
  const size_t n = v.size();
  const size_t m = u.size() - n;
  const int shift = __builtin_clzll(v.back());

  // Normalize so the divisor's top bit is set.
  std::vector<uint64_t> vn(n);
  for (size_t i = n; i-- > 0;) {
    vn[i] = v[i] << shift;
    if (shift && i > 0) vn[i] |= v[i - 1] >> (64 - shift);
  }
  std::vector<uint64_t> un(u.size() + 1, 0);
  for (size_t i = u.size(); i-- > 0;) {
    un[i] = u[i] << shift;
    if (shift && i > 0) un[i] |= u[i - 1] >> (64 - shift);
  }
  if (shift) un[u.size()] = u.back() >> (64 - shift);

  q->assign(m + 1, 0);
  for (size_t j = m + 1; j-- > 0;) {
    u128 num = (static_cast<u128>(un[j + n]) << 64) | un[j + n - 1];
    u128 qhat = num / vn[n - 1];
    u128 rhat = num % vn[n - 1];
    while (qhat >> 64 ||
           qhat * vn[n - 2] > ((rhat << 64) | un[j + n - 2])) {
      --qhat;
      rhat += vn[n - 1];
      if (rhat >> 64) break;
    }
    // Multiply-subtract qhat * vn from un[j .. j+n].
    u128 borrow = 0;
    u128 carry = 0;
    for (size_t i = 0; i < n; ++i) {
      u128 p = qhat * vn[i] + carry;
      carry = p >> 64;
      u128 sub = static_cast<u128>(un[j + i]) - static_cast<uint64_t>(p) -
                 static_cast<uint64_t>(borrow);
      un[j + i] = static_cast<uint64_t>(sub);
      borrow = (sub >> 64) ? 1 : 0;
    }
    u128 sub = static_cast<u128>(un[j + n]) - carry - borrow;
    un[j + n] = static_cast<uint64_t>(sub);
    if (sub >> 64) {
      // qhat was one too large: add back.
      --qhat;
      uint64_t c = 0;
      for (size_t i = 0; i < n; ++i) {
        u128 cur = static_cast<u128>(un[j + i]) + vn[i] + c;
        un[j + i] = static_cast<uint64_t>(cur);
        c = static_cast<uint64_t>(cur >> 64);
      }
      un[j + n] += c;
    }
    (*q)[j] = static_cast<uint64_t>(qhat);
  }

  // Denormalize remainder.
  r->assign(n, 0);
  for (size_t i = 0; i < n; ++i) {
    (*r)[i] = un[i] >> shift;
    if (shift && i + 1 < un.size()) (*r)[i] |= un[i + 1] << (64 - shift);
  }
  TrimZeros(q);
  TrimZeros(r);
}

void DivModMag(const std::vector<uint64_t>& u, const std::vector<uint64_t>& v,
               std::vector<uint64_t>* q, std::vector<uint64_t>* r) {
  VF2_CHECK(!v.empty()) << "division by zero";
  if (CompareMag(u, v) < 0) {
    q->clear();
    *r = u;
    return;
  }
  if (v.size() == 1) {
    uint64_t rem = DivModSingle(u, v[0], q);
    r->clear();
    if (rem) r->push_back(rem);
    return;
  }
  DivModKnuth(u, v, q, r);
}

}  // namespace

BigInt::BigInt(int64_t v) {
  if (v < 0) {
    negative_ = true;
    // Avoid overflow on INT64_MIN.
    limbs_.push_back(static_cast<uint64_t>(-(v + 1)) + 1);
  } else if (v > 0) {
    limbs_.push_back(static_cast<uint64_t>(v));
  }
}

BigInt::BigInt(uint64_t v) {
  if (v != 0) limbs_.push_back(v);
}

void BigInt::Normalize() {
  TrimZeros(&limbs_);
  if (limbs_.empty()) negative_ = false;
}

Result<BigInt> BigInt::FromDecString(const std::string& s) {
  size_t pos = 0;
  bool neg = false;
  if (pos < s.size() && (s[pos] == '-' || s[pos] == '+')) {
    neg = s[pos] == '-';
    ++pos;
  }
  if (pos >= s.size()) return Status::InvalidArgument("empty number: " + s);
  BigInt out;
  // Process up to 19 digits at a time: out = out * 10^k + chunk.
  while (pos < s.size()) {
    uint64_t chunk = 0;
    uint64_t base = 1;
    int digits = 0;
    while (pos < s.size() && digits < kDecChunkDigits) {
      if (!std::isdigit(static_cast<unsigned char>(s[pos]))) {
        return Status::InvalidArgument("bad decimal digit in: " + s);
      }
      chunk = chunk * 10 + static_cast<uint64_t>(s[pos] - '0');
      base *= 10;
      ++pos;
      ++digits;
    }
    out = out * BigInt(base) + BigInt(chunk);
  }
  out.negative_ = neg && !out.IsZero();
  return out;
}

Result<BigInt> BigInt::FromHexString(const std::string& s) {
  size_t pos = 0;
  bool neg = false;
  if (pos < s.size() && (s[pos] == '-' || s[pos] == '+')) {
    neg = s[pos] == '-';
    ++pos;
  }
  if (pos >= s.size()) return Status::InvalidArgument("empty number: " + s);
  BigInt out;
  for (; pos < s.size(); ++pos) {
    const char c = s[pos];
    uint64_t d;
    if (c >= '0' && c <= '9') {
      d = static_cast<uint64_t>(c - '0');
    } else if (c >= 'a' && c <= 'f') {
      d = static_cast<uint64_t>(c - 'a' + 10);
    } else if (c >= 'A' && c <= 'F') {
      d = static_cast<uint64_t>(c - 'A' + 10);
    } else {
      return Status::InvalidArgument("bad hex digit in: " + s);
    }
    out = (out << 4) + BigInt(d);
  }
  out.negative_ = neg && !out.IsZero();
  return out;
}

BigInt BigInt::FromBytes(const uint8_t* data, size_t len) {
  BigInt out;
  out.limbs_.assign((len + 7) / 8, 0);
  for (size_t i = 0; i < len; ++i) {
    out.limbs_[i / 8] |= static_cast<uint64_t>(data[i]) << (8 * (i % 8));
  }
  out.Normalize();
  return out;
}

BigInt BigInt::FromLimbs(std::vector<uint64_t> limbs) {
  BigInt out;
  out.limbs_ = std::move(limbs);
  out.Normalize();
  return out;
}

BigInt BigInt::Random(size_t bits, Rng* rng) {
  BigInt out;
  if (bits == 0) return out;
  const size_t full = bits / 64;
  const size_t rem = bits % 64;
  out.limbs_.resize(full + (rem ? 1 : 0));
  for (size_t i = 0; i < full; ++i) out.limbs_[i] = rng->NextU64();
  if (rem) out.limbs_[full] = rng->NextU64() >> (64 - rem);
  out.Normalize();
  return out;
}

BigInt BigInt::RandomBelow(const BigInt& bound, Rng* rng) {
  VF2_CHECK(!bound.IsZero() && !bound.IsNegative())
      << "RandomBelow requires positive bound";
  const size_t bits = bound.BitLength();
  for (;;) {
    BigInt candidate = Random(bits, rng);
    if (candidate.Compare(bound) < 0) return candidate;
  }
}

size_t BigInt::BitLength() const {
  if (limbs_.empty()) return 0;
  return 64 * limbs_.size() -
         static_cast<size_t>(__builtin_clzll(limbs_.back()));
}

bool BigInt::TestBit(size_t i) const {
  const size_t limb = i / 64;
  if (limb >= limbs_.size()) return false;
  return (limbs_[limb] >> (i % 64)) & 1;
}

int BigInt::Compare(const BigInt& other) const {
  if (negative_ != other.negative_) return negative_ ? -1 : 1;
  const int mag = CompareMag(limbs_, other.limbs_);
  return negative_ ? -mag : mag;
}

int BigInt::CompareMagnitude(const BigInt& other) const {
  return CompareMag(limbs_, other.limbs_);
}

BigInt operator+(const BigInt& a, const BigInt& b) {
  BigInt out;
  if (a.negative_ == b.negative_) {
    out.limbs_ = AddRaw(a.limbs_, b.limbs_);
    out.negative_ = a.negative_;
  } else {
    const int cmp = CompareMag(a.limbs_, b.limbs_);
    if (cmp == 0) return out;  // zero
    if (cmp > 0) {
      out.limbs_ = SubRaw(a.limbs_, b.limbs_);
      out.negative_ = a.negative_;
    } else {
      out.limbs_ = SubRaw(b.limbs_, a.limbs_);
      out.negative_ = b.negative_;
    }
  }
  out.Normalize();
  return out;
}

BigInt operator-(const BigInt& a, const BigInt& b) { return a + (-b); }

BigInt operator*(const BigInt& a, const BigInt& b) {
  BigInt out;
  out.limbs_ = MulRaw(a.limbs_, b.limbs_);
  out.negative_ = (a.negative_ != b.negative_) && !out.limbs_.empty();
  return out;
}

BigInt operator/(const BigInt& a, const BigInt& b) {
  BigInt q, r;
  BigInt::DivMod(a, b, &q, &r);
  return q;
}

BigInt operator%(const BigInt& a, const BigInt& b) {
  BigInt q, r;
  BigInt::DivMod(a, b, &q, &r);
  return r;
}

void BigInt::DivMod(const BigInt& a, const BigInt& b, BigInt* quotient,
                    BigInt* remainder) {
  std::vector<uint64_t> q, r;
  DivModMag(a.limbs_, b.limbs_, &q, &r);
  quotient->limbs_ = std::move(q);
  quotient->negative_ = (a.negative_ != b.negative_);
  quotient->Normalize();
  remainder->limbs_ = std::move(r);
  remainder->negative_ = a.negative_;
  remainder->Normalize();
}

BigInt BigInt::operator-() const {
  BigInt out = *this;
  if (!out.IsZero()) out.negative_ = !out.negative_;
  return out;
}

BigInt BigInt::operator<<(size_t bits) const {
  if (IsZero() || bits == 0) return *this;
  const size_t limb_shift = bits / 64;
  const size_t bit_shift = bits % 64;
  BigInt out;
  out.negative_ = negative_;
  out.limbs_.assign(limbs_.size() + limb_shift + 1, 0);
  for (size_t i = 0; i < limbs_.size(); ++i) {
    out.limbs_[i + limb_shift] |= limbs_[i] << bit_shift;
    if (bit_shift) {
      out.limbs_[i + limb_shift + 1] |= limbs_[i] >> (64 - bit_shift);
    }
  }
  out.Normalize();
  return out;
}

BigInt BigInt::operator>>(size_t bits) const {
  const size_t limb_shift = bits / 64;
  if (limb_shift >= limbs_.size()) return BigInt();
  const size_t bit_shift = bits % 64;
  BigInt out;
  out.negative_ = negative_;
  out.limbs_.assign(limbs_.size() - limb_shift, 0);
  for (size_t i = 0; i < out.limbs_.size(); ++i) {
    out.limbs_[i] = limbs_[i + limb_shift] >> bit_shift;
    if (bit_shift && i + limb_shift + 1 < limbs_.size()) {
      out.limbs_[i] |= limbs_[i + limb_shift + 1] << (64 - bit_shift);
    }
  }
  out.Normalize();
  return out;
}

double BigInt::ToDouble() const {
  double v = 0;
  for (size_t i = limbs_.size(); i-- > 0;) {
    v = v * 18446744073709551616.0 + static_cast<double>(limbs_[i]);
  }
  return negative_ ? -v : v;
}

std::string BigInt::ToDecString() const {
  if (IsZero()) return "0";
  std::vector<uint64_t> mag = limbs_;
  std::string out;
  while (!mag.empty()) {
    std::vector<uint64_t> q;
    uint64_t rem = DivModSingle(mag, kDecChunkBase, &q);
    mag = std::move(q);
    if (mag.empty()) {
      out = std::to_string(rem) + out;
    } else {
      std::string chunk = std::to_string(rem);
      out = std::string(kDecChunkDigits - chunk.size(), '0') + chunk + out;
    }
  }
  return negative_ ? "-" + out : out;
}

std::string BigInt::ToHexString() const {
  if (IsZero()) return "0";
  static const char* kDigits = "0123456789abcdef";
  std::string out;
  for (size_t i = limbs_.size(); i-- > 0;) {
    for (int nib = 15; nib >= 0; --nib) {
      const int d = static_cast<int>((limbs_[i] >> (4 * nib)) & 0xf);
      if (out.empty() && d == 0) continue;
      out.push_back(kDigits[d]);
    }
  }
  return negative_ ? "-" + out : out;
}

std::vector<uint8_t> BigInt::ToBytes() const {
  std::vector<uint8_t> out;
  out.reserve(limbs_.size() * 8);
  for (uint64_t limb : limbs_) {
    for (int b = 0; b < 8; ++b) out.push_back((limb >> (8 * b)) & 0xff);
  }
  while (!out.empty() && out.back() == 0) out.pop_back();
  return out;
}

std::vector<uint64_t> BigInt::AddMag(const std::vector<uint64_t>& a,
                                     const std::vector<uint64_t>& b) {
  return AddRaw(a, b);
}
std::vector<uint64_t> BigInt::SubMag(const std::vector<uint64_t>& a,
                                     const std::vector<uint64_t>& b) {
  return SubRaw(a, b);
}
std::vector<uint64_t> BigInt::MulMag(const std::vector<uint64_t>& a,
                                     const std::vector<uint64_t>& b) {
  return MulRaw(a, b);
}

}  // namespace vf2boost
