#include "bigint/prime.h"

#include <array>

#include "bigint/modarith.h"
#include "common/logging.h"

namespace vf2boost {

namespace {

// Primes below 256 for fast trial division.
constexpr std::array<uint64_t, 54> kSmallPrimes = {
    2,   3,   5,   7,   11,  13,  17,  19,  23,  29,  31,  37,  41,  43,
    47,  53,  59,  61,  67,  71,  73,  79,  83,  89,  97,  101, 103, 107,
    109, 113, 127, 131, 137, 139, 149, 151, 157, 163, 167, 173, 179, 181,
    191, 193, 197, 199, 211, 223, 227, 229, 233, 239, 241, 251};

// n mod d for small d without building a BigInt divisor.
uint64_t ModSmall(const BigInt& n, uint64_t d) {
  unsigned __int128 rem = 0;
  const auto& limbs = n.limbs();
  for (size_t i = limbs.size(); i-- > 0;) {
    rem = ((rem << 64) | limbs[i]) % d;
  }
  return static_cast<uint64_t>(rem);
}

}  // namespace

bool IsProbablePrime(const BigInt& n, Rng* rng, int rounds) {
  if (n.IsNegative() || n.IsZero() || n.IsOne()) return false;
  for (uint64_t p : kSmallPrimes) {
    if (n == BigInt(p)) return true;
    if (ModSmall(n, p) == 0) return false;
  }

  // Write n-1 = d * 2^r with d odd.
  const BigInt n_minus_1 = n - BigInt(1);
  size_t r = 0;
  while (!n_minus_1.TestBit(r)) ++r;
  const BigInt d = n_minus_1 >> r;

  // One Montgomery context serves every witness of every round; the
  // squaring chain stays in the Montgomery domain (canonical residues, so
  // the n-1 comparison works on in-domain values directly).
  const MontgomeryContext ctx(n);
  const BigInt two(2);
  const BigInt n_minus_3 = n - BigInt(3);
  const BigInt minus_one_mont = ctx.ToMont(n_minus_1);
  for (int round = 0; round < rounds; ++round) {
    // Witness a uniform in [2, n-2].
    const BigInt a = BigInt::RandomBelow(n_minus_3, rng) + two;
    BigInt x = ctx.Pow(a, d);
    if (x.IsOne() || x == n_minus_1) continue;
    BigInt xm = ctx.ToMont(x);
    bool composite = true;
    for (size_t i = 0; i + 1 < r; ++i) {
      xm = ctx.MontMul(xm, xm);
      if (xm == minus_one_mont) {
        composite = false;
        break;
      }
    }
    if (composite) return false;
  }
  return true;
}

BigInt GeneratePrime(size_t bits, Rng* rng, int rounds) {
  VF2_CHECK(bits >= 8) << "prime size too small: " << bits;
  for (;;) {
    BigInt candidate = BigInt::Random(bits, rng);
    // Force oddness and exact bit length.
    if (candidate.IsEven()) candidate += BigInt(1);
    if (!candidate.TestBit(bits - 1)) {
      candidate += (BigInt(1) << (bits - 1));
    }
    if (IsProbablePrime(candidate, rng, rounds)) return candidate;
  }
}

}  // namespace vf2boost
