#ifndef VF2BOOST_OBS_BUILD_INFO_H_
#define VF2BOOST_OBS_BUILD_INFO_H_

#include <string>

namespace vf2boost {
namespace obs {

class MetricsRegistry;

/// Compile-time identity of this binary. The git SHA is captured at CMake
/// configure time (it can lag HEAD until the next reconfigure); "unknown"
/// when the source tree is not a git checkout.
struct BuildInfo {
  const char* version;
  const char* git_sha;
};

BuildInfo GetBuildInfo();

/// Unix timestamp (seconds) at which this process initialized, and seconds
/// elapsed since then. Both anchored to the same static-init instant so
/// start + uptime is consistent.
double ProcessStartUnixSeconds();
double ProcessUptimeSeconds();

/// Registers the self-identification entries every export should carry:
///   build/info                  value 1, unit "<version>+<git_sha>"
///   process/start_time_seconds  unix epoch seconds
/// Idempotent — callers at different layers (trainer, CLIs) may all call it.
void RegisterBuildInfo(MetricsRegistry* registry);

}  // namespace obs
}  // namespace vf2boost

#endif  // VF2BOOST_OBS_BUILD_INFO_H_
