#include "obs/trace_check.h"

#include <cctype>
#include <cstdlib>
#include <map>
#include <set>
#include <utility>

namespace vf2boost {
namespace obs {

const JsonValue* JsonValue::Get(const std::string& key) const {
  if (type != Type::kObject) return nullptr;
  const auto it = object.find(key);
  return it == object.end() ? nullptr : &it->second;
}

namespace {

/// Recursive-descent parser for the JSON subset we emit (no \u escapes
/// beyond pass-through, no depth limit concerns at our sizes).
class Parser {
 public:
  Parser(const std::string& text, std::string* error)
      : s_(text), error_(error) {}

  bool Parse(JsonValue* out) {
    SkipWs();
    if (!ParseValue(out)) return false;
    SkipWs();
    if (pos_ != s_.size()) return Fail("trailing characters after document");
    return true;
  }

 private:
  bool Fail(const std::string& msg) {
    if (error_ != nullptr) {
      *error_ = msg + " at offset " + std::to_string(pos_);
    }
    return false;
  }

  void SkipWs() {
    while (pos_ < s_.size() && std::isspace(static_cast<unsigned char>(s_[pos_]))) {
      ++pos_;
    }
  }

  bool Consume(char c) {
    if (pos_ < s_.size() && s_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  bool ParseValue(JsonValue* out) {
    if (pos_ >= s_.size()) return Fail("unexpected end of input");
    const char c = s_[pos_];
    if (c == '{') return ParseObject(out);
    if (c == '[') return ParseArray(out);
    if (c == '"') {
      out->type = JsonValue::Type::kString;
      return ParseString(&out->string);
    }
    if (c == 't' || c == 'f') return ParseKeyword(out);
    if (c == 'n') return ParseKeyword(out);
    return ParseNumber(out);
  }

  bool ParseKeyword(JsonValue* out) {
    auto match = [&](const char* kw) {
      const size_t len = std::string(kw).size();
      if (s_.compare(pos_, len, kw) == 0) {
        pos_ += len;
        return true;
      }
      return false;
    };
    if (match("true")) {
      out->type = JsonValue::Type::kBool;
      out->boolean = true;
      return true;
    }
    if (match("false")) {
      out->type = JsonValue::Type::kBool;
      out->boolean = false;
      return true;
    }
    if (match("null")) {
      out->type = JsonValue::Type::kNull;
      return true;
    }
    return Fail("bad keyword");
  }

  bool ParseNumber(JsonValue* out) {
    const size_t start = pos_;
    if (pos_ < s_.size() && (s_[pos_] == '-' || s_[pos_] == '+')) ++pos_;
    bool digits = false;
    while (pos_ < s_.size() &&
           (std::isdigit(static_cast<unsigned char>(s_[pos_])) ||
            s_[pos_] == '.' || s_[pos_] == 'e' || s_[pos_] == 'E' ||
            s_[pos_] == '+' || s_[pos_] == '-')) {
      digits |= std::isdigit(static_cast<unsigned char>(s_[pos_])) != 0;
      ++pos_;
    }
    if (!digits) return Fail("bad number");
    out->type = JsonValue::Type::kNumber;
    out->number = std::strtod(s_.substr(start, pos_ - start).c_str(), nullptr);
    return true;
  }

  bool ParseString(std::string* out) {
    if (!Consume('"')) return Fail("expected '\"'");
    out->clear();
    while (pos_ < s_.size()) {
      const char c = s_[pos_++];
      if (c == '"') return true;
      if (c == '\\') {
        if (pos_ >= s_.size()) return Fail("bad escape");
        const char e = s_[pos_++];
        switch (e) {
          case '"': *out += '"'; break;
          case '\\': *out += '\\'; break;
          case '/': *out += '/'; break;
          case 'n': *out += '\n'; break;
          case 't': *out += '\t'; break;
          case 'r': *out += '\r'; break;
          case 'b': *out += '\b'; break;
          case 'f': *out += '\f'; break;
          case 'u':
            if (pos_ + 4 > s_.size()) return Fail("bad \\u escape");
            pos_ += 4;  // validated presence only; we never emit these
            *out += '?';
            break;
          default:
            return Fail("bad escape");
        }
      } else {
        *out += c;
      }
    }
    return Fail("unterminated string");
  }

  bool ParseArray(JsonValue* out) {
    out->type = JsonValue::Type::kArray;
    Consume('[');
    SkipWs();
    if (Consume(']')) return true;
    for (;;) {
      JsonValue v;
      SkipWs();
      if (!ParseValue(&v)) return false;
      out->array.push_back(std::move(v));
      SkipWs();
      if (Consume(']')) return true;
      if (!Consume(',')) return Fail("expected ',' or ']'");
    }
  }

  bool ParseObject(JsonValue* out) {
    out->type = JsonValue::Type::kObject;
    Consume('{');
    SkipWs();
    if (Consume('}')) return true;
    for (;;) {
      SkipWs();
      std::string key;
      if (!ParseString(&key)) return false;
      SkipWs();
      if (!Consume(':')) return Fail("expected ':'");
      SkipWs();
      JsonValue v;
      if (!ParseValue(&v)) return false;
      out->object.emplace(std::move(key), std::move(v));
      SkipWs();
      if (Consume('}')) return true;
      if (!Consume(',')) return Fail("expected ',' or '}'");
    }
  }

  const std::string& s_;
  std::string* error_;
  size_t pos_ = 0;
};

bool RequireNumber(const JsonValue& event, const char* field,
                   std::string* error, size_t index) {
  const JsonValue* v = event.Get(field);
  if (v == nullptr || !v->is_number()) {
    *error = "event " + std::to_string(index) + " missing numeric '" +
             field + "'";
    return false;
  }
  return true;
}

}  // namespace

bool ParseJson(const std::string& text, JsonValue* out, std::string* error) {
  return Parser(text, error).Parse(out);
}

bool ValidateTraceJson(const std::string& text, std::string* error,
                       TraceSummary* summary) {
  JsonValue root;
  if (!ParseJson(text, &root, error)) return false;
  if (!root.is_object()) {
    *error = "trace root is not an object";
    return false;
  }
  const JsonValue* events = root.Get("traceEvents");
  if (events == nullptr || !events->is_array()) {
    *error = "missing traceEvents array";
    return false;
  }
  TraceSummary local;
  // B/E nesting depth per (pid, tid); flow ids seen anywhere in the file.
  // Flow matching is deliberately order-insensitive: the recorder appends
  // events from many threads, so a receiver can land its 'f' in the array
  // before the sender's 's' (both are emitted outside the channel lock).
  // The trace format keys flows by id, not array position.
  std::map<std::pair<double, double>, long> depth;
  std::set<double> flow_started;
  std::vector<double> flow_finished;
  for (size_t i = 0; i < events->array.size(); ++i) {
    const JsonValue& e = events->array[i];
    if (!e.is_object()) {
      *error = "event " + std::to_string(i) + " is not an object";
      return false;
    }
    const JsonValue* ph = e.Get("ph");
    if (ph == nullptr || !ph->is_string() || ph->string.size() != 1) {
      *error = "event " + std::to_string(i) + " missing 'ph'";
      return false;
    }
    if (!RequireNumber(e, "ts", error, i) ||
        !RequireNumber(e, "pid", error, i) ||
        !RequireNumber(e, "tid", error, i)) {
      return false;
    }
    const JsonValue* name = e.Get("name");
    if (name == nullptr || !name->is_string()) {
      *error = "event " + std::to_string(i) + " missing 'name'";
      return false;
    }
    ++local.events;
    const char kind = ph->string[0];
    const auto key = std::make_pair(e.Get("pid")->number,
                                    e.Get("tid")->number);
    switch (kind) {
      case 'X': {
        const JsonValue* dur = e.Get("dur");
        if (dur == nullptr || !dur->is_number() || dur->number < 0) {
          *error = "complete event " + std::to_string(i) +
                   " missing nonnegative 'dur'";
          return false;
        }
        ++local.complete_spans;
        ++local.span_counts[name->string];
        break;
      }
      case 'B':
        ++depth[key];
        break;
      case 'E':
        if (--depth[key] < 0) {
          *error = "unbalanced 'E' event at index " + std::to_string(i);
          return false;
        }
        break;
      case 's':
      case 'f': {
        const JsonValue* id = e.Get("id");
        if (id == nullptr || !id->is_number()) {
          *error = "flow event " + std::to_string(i) + " missing 'id'";
          return false;
        }
        if (kind == 's') {
          flow_started.insert(id->number);
          ++local.flow_starts;
        } else {
          flow_finished.push_back(id->number);
          ++local.flow_ends;
        }
        break;
      }
      case 'C':
        ++local.counters;
        break;
      case 'M':
        break;  // metadata
      default:
        *error = std::string("unknown phase '") + kind + "' at index " +
                 std::to_string(i);
        return false;
    }
  }
  for (const auto& [key, d] : depth) {
    if (d != 0) {
      *error = "unbalanced B/E spans on pid " + std::to_string(key.first) +
               " tid " + std::to_string(key.second);
      return false;
    }
  }
  // A dangling 's' is legal (the message was dropped in flight); a 'f'
  // with no 's' anywhere means the recorder fabricated a delivery.
  for (double id : flow_finished) {
    if (flow_started.count(id) == 0) {
      *error = "flow finish without start (id " + std::to_string(id) + ")";
      return false;
    }
  }
  if (summary != nullptr) *summary = std::move(local);
  return true;
}

bool AuditTraceFlows(const std::string& text, int64_t slack_us,
                     const std::vector<std::string>& require_matched_names,
                     std::string* error, FlowAudit* audit) {
  JsonValue root;
  if (!ParseJson(text, &root, error)) return false;
  const JsonValue* events =
      root.is_object() ? root.Get("traceEvents") : nullptr;
  if (events == nullptr || !events->is_array()) {
    *error = "missing traceEvents array";
    return false;
  }

  // Flow ids are namespaced doubles < 2^48, exactly representable; the
  // timestamps are microseconds (already offset-corrected by the merge).
  struct FlowSide {
    bool present = false;
    double ts = 0;
    std::string name;
  };
  std::map<double, std::pair<FlowSide, FlowSide>> flows;  // id -> (s, f)
  for (const JsonValue& e : events->array) {
    if (!e.is_object()) continue;
    const JsonValue* ph = e.Get("ph");
    if (ph == nullptr || !ph->is_string() ||
        (ph->string != "s" && ph->string != "f")) {
      continue;
    }
    const JsonValue* id = e.Get("id");
    const JsonValue* ts = e.Get("ts");
    const JsonValue* name = e.Get("name");
    if (id == nullptr || !id->is_number() || ts == nullptr ||
        !ts->is_number()) {
      *error = "flow event missing numeric id/ts";
      return false;
    }
    FlowSide& side = ph->string == "s" ? flows[id->number].first
                                       : flows[id->number].second;
    side.present = true;
    side.ts = ts->number;
    if (name != nullptr && name->is_string()) side.name = name->string;
  }

  FlowAudit local;
  std::string first_error;
  auto note = [&](const std::string& msg) {
    if (first_error.empty()) first_error = msg;
  };
  for (const auto& [id, pair] : flows) {
    const FlowSide& s = pair.first;
    const FlowSide& f = pair.second;
    if (s.present && f.present) {
      ++local.matched;
      if (f.ts + static_cast<double>(slack_us) < s.ts) {
        ++local.causality_violations;
        note("flow id " + std::to_string(id) + " (" + s.name +
             ") received " + std::to_string(s.ts - f.ts) +
             " us before it was sent (slack " + std::to_string(slack_us) +
             " us): clock offsets are wrong or the merge skipped a file");
      }
      continue;
    }
    const FlowSide& present = s.present ? s : f;
    if (s.present) {
      ++local.unmatched_starts;
    } else {
      ++local.unmatched_ends;
    }
    for (const std::string& required : require_matched_names) {
      if (present.name.find(required) != std::string::npos) {
        note(std::string("unmatched flow ") + (s.present ? "start" : "end") +
             " for required message '" + required + "': " + present.name +
             " (id " + std::to_string(id) + ") has no peer event");
      }
    }
  }
  if (audit != nullptr) *audit = local;
  if (!first_error.empty()) {
    *error = first_error;
    return false;
  }
  return true;
}

bool ValidateMetricsJson(const std::string& text, std::string* error,
                         std::vector<std::string>* names) {
  JsonValue root;
  if (!ParseJson(text, &root, error)) return false;
  if (!root.is_object()) {
    *error = "metrics root is not an object";
    return false;
  }
  const JsonValue* list = root.Get("benchmarks");
  if (list == nullptr || !list->is_array()) {
    *error = "missing benchmarks array";
    return false;
  }
  for (size_t i = 0; i < list->array.size(); ++i) {
    const JsonValue& m = list->array[i];
    const JsonValue* name = m.Get("name");
    const JsonValue* value = m.Get("value");
    const JsonValue* unit = m.Get("unit");
    if (name == nullptr || !name->is_string() || value == nullptr ||
        !value->is_number() || unit == nullptr || !unit->is_string()) {
      *error = "metric " + std::to_string(i) +
               " must have string name, numeric value, string unit";
      return false;
    }
    if (names != nullptr) names->push_back(name->string);
  }
  return true;
}

}  // namespace obs
}  // namespace vf2boost
