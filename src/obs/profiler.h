#ifndef VF2BOOST_OBS_PROFILER_H_
#define VF2BOOST_OBS_PROFILER_H_

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace vf2boost {
namespace obs {

/// \brief In-process sampling CPU profiler with phase attribution.
///
/// Every registered thread gets its own POSIX CPU-time timer
/// (`timer_create` on the thread's `pthread_getcpuclockid` clock) firing
/// SIGPROF at `hz` on that thread. The handler — async-signal-safe: no
/// locks, no allocation, no symbolization — captures a raw backtrace plus
/// the thread's PhaseTag (obs/phase_tag.h, kept current by PhaseClock /
/// VF2_TRACE_SPAN / ThreadPartyScope) into a lock-free ring. A background
/// drainer folds ring entries into aggregate counts; symbolization happens
/// only at report time (`FoldedText`), via dladdr + demangling.
///
/// Because the timers run on per-thread CPU clocks, a blocked thread
/// (comm_wait, idle pool worker) takes no samples — CPU attribution is
/// exactly what the name says, and skew against span wall time is the
/// lock-contention / stall evidence vf2_report surfaces.
///
/// When no profiler is running the cost is zero: no timers exist, SIGPROF
/// never fires, and the instrumentation sites (phase tags) are plain
/// thread-local stores that engines pay anyway for tracing.
///
/// Exactly one profiler can be running at a time (Start fails otherwise).
/// The SIGPROF handler stays installed for the life of the process once any
/// profiler has started — restoring the default disposition while a
/// just-deleted timer still has a signal in flight would kill the process.
struct ProfilerOptions {
  int hz = 99;          ///< per-thread sampling frequency
  int max_frames = 48;  ///< deepest stack captured per sample
};

struct ProfilerStats {
  uint64_t samples = 0;    ///< samples folded into the profile
  uint64_t dropped = 0;    ///< samples lost to a full ring
  uint64_t threads = 0;    ///< threads that were armed at least once
};

class Profiler {
 public:
  explicit Profiler(ProfilerOptions opts = {});
  ~Profiler();

  Profiler(const Profiler&) = delete;
  Profiler& operator=(const Profiler&) = delete;

  /// Arms timers on every registered thread (and on threads that register
  /// later, until Stop). Returns false if another profiler is running.
  bool Start();
  /// Disarms all timers, waits out in-flight handlers, drains the ring.
  /// Idempotent.
  void Stop();

  bool running() const;

  /// The profiler running process-wide right now, or nullptr. Borrowed;
  /// valid until that profiler's Stop returns.
  static Profiler* Active();

  /// Aggregated sample counts keyed by semicolon-joined folded stack
  /// `party;phase;outer;...;inner` (symbolized, root first). Safe while
  /// running; drains pending ring entries first.
  std::map<std::string, uint64_t> Counts() const;

  /// Deterministic folded-stack text: '#' header lines (hz, samples,
  /// dropped), then `party;phase;frames... count` lines sorted
  /// lexicographically. `party_filter` non-empty keeps only stacks whose
  /// first component equals it. `base` non-null subtracts a prior Counts()
  /// snapshot (for serving a time-windowed delta from a long-running
  /// profiler).
  std::string FoldedText(
      const std::string& party_filter = "",
      const std::map<std::string, uint64_t>* base = nullptr) const;
  bool WriteFolded(const std::string& path,
                   const std::string& party_filter = "") const;

  ProfilerStats stats() const;

  struct Impl;  // public name so free helpers in profiler.cc can use it

 private:
  /// Stop body without the collection lock (CollectFoldedProfile already
  /// holds it when stopping its temporary profiler).
  void StopLocked();
  friend std::string CollectFoldedProfile(double seconds, int hz,
                                          std::string* error);
  Impl* impl_;
};

/// Registers the calling thread with the profiler subsystem: a running
/// profiler (current or future) arms a CPU-time timer on it. Idempotent;
/// the thread auto-unregisters at exit. Engines, pool workers and noise
/// producers call this on entry; unregistered threads are simply invisible
/// to profiles.
void ProfilerRegisterCurrentThread();

/// Collects a folded CPU profile over ~`seconds`. If a profiler is already
/// running, serves the delta of its counts over the window; otherwise runs
/// a temporary profiler at `hz`. Blocks for the duration. On failure
/// returns empty and sets `*error`.
std::string CollectFoldedProfile(double seconds, int hz, std::string* error);

/// ---- Folded-profile validation (vf2_trace_check --profile) ----------

struct FoldedProfileInfo {
  uint64_t total_samples = 0;
  uint64_t phase_tagged = 0;  ///< samples whose phase component != "unknown"
  uint64_t lines = 0;
  int hz = 0;  ///< from the '# hz N' header comment; 0 when absent
  std::map<std::string, uint64_t> samples_by_phase;  ///< "party/phase" -> n
};

/// Parses + grammar-checks folded text: '#' comments anywhere; every other
/// line must be `comp1;comp2[;...] count` with >= 2 components, non-empty
/// components, and a positive integer count. Returns false (with `*error`)
/// on the first violation.
bool ParseFoldedProfile(const std::string& text, FoldedProfileInfo* info,
                        std::string* error);

/// ---- Resource accounting --------------------------------------------

/// One sample of process-level resource usage, from /proc/self/statm,
/// getrusage and (glibc) mallinfo2. Fields are 0 when the source is
/// unavailable on the platform.
struct ResourceUsage {
  uint64_t rss_bytes = 0;
  uint64_t peak_rss_bytes = 0;
  double cpu_user_seconds = 0.0;
  double cpu_sys_seconds = 0.0;
  uint64_t heap_allocated_bytes = 0;  ///< allocator in-use bytes (mallinfo2)
  uint64_t heap_free_bytes = 0;       ///< allocator free-list bytes
};
ResourceUsage SampleResourceUsage();

/// Human-readable heap/RSS summary for the ops server's /pprof/heap.
std::string RenderHeapProfile();

}  // namespace obs
}  // namespace vf2boost

#endif  // VF2BOOST_OBS_PROFILER_H_
