#ifndef VF2BOOST_OBS_METRICS_REGISTRY_H_
#define VF2BOOST_OBS_METRICS_REGISTRY_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

namespace vf2boost {
namespace obs {

/// \brief Monotonically increasing event count. All operations are lock-free
/// relaxed atomics: safe to hammer from any number of threads.
class Counter {
 public:
  void Add(uint64_t n = 1) { value_.fetch_add(n, std::memory_order_relaxed); }
  uint64_t value() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<uint64_t> value_{0};
};

/// \brief Last-set instantaneous value (queue depth, pool fill level).
/// Set/Add/value are thread-safe; Set is last-writer-wins.
class Gauge {
 public:
  void Set(double v) { value_.store(v, std::memory_order_relaxed); }
  void Add(double d) {
    double cur = value_.load(std::memory_order_relaxed);
    while (!value_.compare_exchange_weak(cur, cur + d,
                                         std::memory_order_relaxed)) {
    }
  }
  /// Raises the gauge to v if v is larger (high-water marks).
  void Max(double v) {
    double cur = value_.load(std::memory_order_relaxed);
    while (cur < v && !value_.compare_exchange_weak(
                          cur, v, std::memory_order_relaxed)) {
    }
  }
  double value() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<double> value_{0};
};

/// \brief Latency histogram over exponential buckets.
///
/// Bucket i counts observations <= first_upper * growth^i; one overflow
/// bucket catches the rest. Defaults cover 1us .. ~18min in x2 steps, which
/// spans every protocol phase this codebase times. Observe is wait-free
/// except for the CAS loops maintaining sum/min/max.
class Histogram {
 public:
  static constexpr size_t kBuckets = 40;

  explicit Histogram(double first_upper = 1e-6, double growth = 2.0)
      : first_upper_(first_upper), growth_(growth) {}

  void Observe(double v);

  uint64_t count() const { return count_.load(std::memory_order_relaxed); }
  double sum() const { return sum_.load(std::memory_order_relaxed); }
  double min() const;  ///< 0 when empty
  double max() const { return max_.load(std::memory_order_relaxed); }
  double mean() const;
  /// Upper bound of bucket i (inclusive).
  double BucketUpper(size_t i) const;
  uint64_t BucketCount(size_t i) const {
    return buckets_[i].load(std::memory_order_relaxed);
  }
  double first_upper() const { return first_upper_; }
  double growth() const { return growth_; }

 private:
  const double first_upper_;
  const double growth_;
  std::atomic<uint64_t> count_{0};
  std::atomic<double> sum_{0};
  std::atomic<double> min_{1e300};  // sentinel until the first Observe
  std::atomic<double> max_{0};
  std::atomic<uint64_t> buckets_[kBuckets + 1] = {};  // +1 = overflow
};

/// \brief Point-in-time copy of one registry entry.
///
/// The wire- and exporter-facing view of a metric: plain data, no atomics,
/// trivially serializable. Histogram samples carry the full bucket vector
/// (kBuckets + 1 entries, last = overflow) plus the bucket-ladder parameters
/// so a remote renderer can reconstruct the exact upper bounds.
struct MetricSample {
  enum class Kind : uint8_t { kCounter = 0, kGauge = 1, kHistogram = 2, kValue = 3 };

  std::string name;
  Kind kind = Kind::kValue;
  std::string unit;
  double value = 0;  ///< counter / gauge / value kinds

  // Histogram kind only.
  uint64_t count = 0;
  double sum = 0;
  double min = 0;
  double max = 0;
  double first_upper = 0;
  double growth = 0;
  std::vector<uint64_t> buckets;
};

/// Inserts a party suffix before the path's extension so per-party artifact
/// files from a multi-process run never collide in a shared directory:
///   PartyArtifactPath("out/metrics.json", "party_b") == "out/metrics.party_b.json"
///   PartyArtifactPath("trace", "party_a0")           == "trace.party_a0"
std::string PartyArtifactPath(const std::string& path,
                              const std::string& party);

/// \brief Thread-safe name -> metric registry with a flat JSON exporter.
///
/// Get* creates on first use and returns a pointer that stays valid for the
/// registry's lifetime, so hot paths resolve their handles once and then
/// touch only atomics. The exported JSON keeps the same minimal shape the
/// bench harness has always written —
///   {"benchmarks": [{"name": ..., "value": ..., "unit": ...}, ...]}
/// — so CI diff scripts need no JSON library and no migration. Histograms
/// export sum/count/mean/min/max as separate flat entries.
class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  Counter* GetCounter(const std::string& name);
  Gauge* GetGauge(const std::string& name, const std::string& unit = "");
  /// Histogram of seconds (phase latencies).
  Histogram* GetHistogram(const std::string& name);

  /// One-shot named value with a unit (the legacy bench-emitter call shape).
  /// Re-setting the same name overwrites.
  void SetValue(const std::string& name, double value,
                const std::string& unit);

  bool empty() const;
  size_t size() const;

  /// Point-in-time copy of every entry whose name starts with `prefix`
  /// ("" = all), in registration order. Values are read with the same relaxed
  /// loads the JSON exporter uses, so a snapshot is safe concurrently with
  /// writers — it is a consistent-enough view for observability, not a
  /// linearizable one.
  std::vector<MetricSample> Snapshot(const std::string& prefix = "") const;

  /// Flat JSON of every entry whose name starts with `prefix` ("" = all).
  std::string ToJson(const std::string& prefix = "") const;
  /// Writes ToJson(prefix) to `path`; logs and returns false on I/O failure.
  bool WriteJson(const std::string& path,
                 const std::string& prefix = "") const;

 private:
  enum class Kind { kCounter, kGauge, kHistogram, kValue };
  struct Entry {
    Kind kind;
    std::string unit;
    std::unique_ptr<Counter> counter;
    std::unique_ptr<Gauge> gauge;
    std::unique_ptr<Histogram> histogram;
    double value = 0;  // kValue
  };

  Entry* Find(const std::string& name, Kind kind);

  mutable std::mutex mu_;
  std::map<std::string, Entry> entries_;
  std::vector<std::string> order_;  ///< registration order for stable export
};

}  // namespace obs
}  // namespace vf2boost

#endif  // VF2BOOST_OBS_METRICS_REGISTRY_H_
