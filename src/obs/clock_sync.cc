#include "obs/clock_sync.h"

namespace vf2boost {
namespace obs {

void ClockSync::AddSample(int64_t t1, int64_t t2, int64_t t3, int64_t t4) {
  const int64_t rtt = (t4 - t1) - (t3 - t2);
  if (rtt < 0) return;  // crossed a reconnect or a clock went backwards
  const int64_t offset = ((t2 - t1) + (t3 - t4)) / 2;
  // With symmetric path delay the error is zero; worst-case asymmetry (all
  // delay on one leg) puts the true offset anywhere within rtt/2.
  Ingest(offset, rtt, rtt / 2 + 1, /*hello=*/false);
}

void ClockSync::AddHelloSample(int64_t t1, int64_t peer_us, int64_t t4) {
  const int64_t rtt = t4 - t1;
  if (rtt < 0) return;
  const int64_t offset = peer_us - (t1 + t4) / 2;
  Ingest(offset, rtt, rtt / 2 + 1, /*hello=*/true);
}

void ClockSync::Ingest(int64_t offset, int64_t rtt, int64_t uncertainty,
                       bool hello) {
  std::lock_guard<std::mutex> lock(mu_);
  ++samples_;
  // Real rounds always displace a hello seed, whatever its apparent rtt:
  // the hello "round trip" brackets a whole symmetric handshake, so its
  // uncertainty is not comparable.
  const bool adopt = !has_estimate_ || (estimate_from_hello_ && !hello) ||
                     (estimate_from_hello_ == hello && rtt < min_rtt_us_);
  if (adopt) {
    has_estimate_ = true;
    estimate_from_hello_ = hello;
    offset_us_ = offset;
    uncertainty_us_ = uncertainty;
    min_rtt_us_ = rtt;
  }
  PublishLocked();
}

void ClockSync::PublishLocked() {
  if (g_offset_ == nullptr) return;
  g_offset_->Set(static_cast<double>(offset_us_));
  g_uncertainty_->Set(static_cast<double>(uncertainty_us_));
  g_rtt_->Set(static_cast<double>(min_rtt_us_));
  g_samples_->Set(static_cast<double>(samples_));
}

bool ClockSync::has_estimate() const {
  std::lock_guard<std::mutex> lock(mu_);
  return has_estimate_;
}

int64_t ClockSync::offset_us() const {
  std::lock_guard<std::mutex> lock(mu_);
  return offset_us_;
}

int64_t ClockSync::uncertainty_us() const {
  std::lock_guard<std::mutex> lock(mu_);
  return uncertainty_us_;
}

int64_t ClockSync::rtt_us() const {
  std::lock_guard<std::mutex> lock(mu_);
  return min_rtt_us_;
}

uint32_t ClockSync::samples() const {
  std::lock_guard<std::mutex> lock(mu_);
  return samples_;
}

void ClockSync::BindMetrics(MetricsRegistry* registry,
                            const std::string& prefix) {
  std::lock_guard<std::mutex> lock(mu_);
  g_offset_ = registry->GetGauge(prefix + "/clock_sync/offset_us", "us");
  g_uncertainty_ =
      registry->GetGauge(prefix + "/clock_sync/uncertainty_us", "us");
  g_rtt_ = registry->GetGauge(prefix + "/clock_sync/rtt_us", "us");
  g_samples_ = registry->GetGauge(prefix + "/clock_sync/samples", "");
  PublishLocked();
}

TraceRecorder::ClockSyncMeta ClockSync::ToMeta() const {
  std::lock_guard<std::mutex> lock(mu_);
  TraceRecorder::ClockSyncMeta meta;
  meta.offset_us = offset_us_;
  meta.uncertainty_us = uncertainty_us_;
  meta.rtt_us = min_rtt_us_;
  meta.samples = samples_;
  meta.reference = false;
  return meta;
}

}  // namespace obs
}  // namespace vf2boost
