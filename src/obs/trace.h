#ifndef VF2BOOST_OBS_TRACE_H_
#define VF2BOOST_OBS_TRACE_H_

#include <atomic>
#include <chrono>
#include <cstdint>
#include <cstring>
#include <map>
#include <mutex>
#include <string>
#include <vector>

#include "obs/phase_tag.h"

namespace vf2boost {
namespace obs {

/// \brief Span/flow recorder emitting Chrome trace-event JSON.
///
/// The output loads directly in Perfetto (https://ui.perfetto.dev) or
/// chrome://tracing and reconstructs the paper's Fig-4/5 timelines from a
/// REAL run: pid = party, tid = thread, complete ("X") spans for protocol
/// phases, flow ("s"/"f") arrows linking a message's send on one party to
/// its receive on the other, and counter ("C") tracks for gauges like the
/// noise-pool fill level.
///
/// Exactly one recorder can be active at a time (`Install`/`Uninstall`);
/// instrumentation sites reach it through `Current()`, one relaxed atomic
/// load. With no recorder installed a VF2_TRACE_SPAN costs that load and a
/// predictable branch — nothing else — so the hot paths stay untouched in
/// production runs.
///
/// Thread-safe: events from any thread are appended under one mutex. That is
/// deliberate — spans mark phase boundaries (per batch / node / message),
/// not per-element work, so contention is negligible next to the crypto they
/// bracket.
class TraceRecorder {
 public:
  using Clock = std::chrono::steady_clock;

  TraceRecorder();
  ~TraceRecorder();

  TraceRecorder(const TraceRecorder&) = delete;
  TraceRecorder& operator=(const TraceRecorder&) = delete;

  /// Makes this the process-global recorder seen by Current(). The recorder
  /// must outlive training; Uninstall (or destruction) detaches it.
  void Install();
  static void Uninstall();
  static TraceRecorder* Current() {
    return g_current.load(std::memory_order_acquire);
  }

  /// Binds the calling thread to a trace process: subsequent events from
  /// this thread carry `pid`, and the pid row is labeled `process_name` in
  /// the viewer. Engines call this on entry (B on the caller thread, each A
  /// on its spawned thread). Affects only trace attribution; safe to call
  /// with no recorder installed.
  static void SetThreadParty(uint32_t pid, const std::string& process_name);

  /// Clock-alignment metadata for one trace process, embedded into the
  /// exported JSON (top-level "clockSync" array) so vf2_trace_merge can
  /// shift this file's timestamps onto the reference party's timeline.
  /// `reference` marks the party whose clock the offsets are relative to
  /// (its own offset is 0 by definition).
  struct ClockSyncMeta {
    int64_t offset_us = 0;       ///< add to local ts to land on reference time
    int64_t uncertainty_us = 0;  ///< bound on |true offset - offset_us|
    int64_t rtt_us = 0;          ///< min round-trip of the samples used
    uint32_t samples = 0;
    bool reference = false;
  };
  void SetClockSync(uint32_t pid, const ClockSyncMeta& meta);
  std::map<uint32_t, ClockSyncMeta> ClockSyncEntries() const;

  /// Microseconds since this recorder was created (all parties share the
  /// process clock, so cross-party spans and flows line up).
  int64_t NowMicros() const;

  /// Complete span [ts_us, ts_us + dur_us). `args_json` is either empty or
  /// a preformatted `"key":value` list (no outer braces).
  void CompleteSpan(std::string name, const char* category, int64_t ts_us,
                    int64_t dur_us, std::string args_json);
  /// Flow arrow endpoints; `id` must match between the send ("s") and the
  /// receive ("f") side. Each endpoint also emits a 1us anchor span, which
  /// the arrow binds to in the viewer.
  void FlowStart(std::string name, uint64_t id, std::string args_json);
  void FlowEnd(std::string name, uint64_t id, std::string args_json);
  /// Counter track sample (rendered as a step chart).
  void CounterValue(std::string name, double value);

  size_t num_events() const;

  /// View of recorded complete spans (for the text gantt renderer).
  struct SpanView {
    const std::string* name;
    uint32_t pid;
    uint32_t tid;
    int64_t ts_us;
    int64_t dur_us;
  };
  std::vector<SpanView> CompleteSpans() const;
  std::map<uint32_t, std::string> ProcessNames() const;

  /// The last kRecentSpanCapacity completed spans, oldest first — a bounded
  /// owning copy (names included) for live introspection (/tracez) while the
  /// full event log keeps growing.
  static constexpr size_t kRecentSpanCapacity = 256;
  struct RecentSpan {
    std::string name;
    uint32_t pid;
    uint32_t tid;
    int64_t ts_us;
    int64_t dur_us;
  };
  std::vector<RecentSpan> RecentSpans() const;

  /// `pid_filter` >= 0 keeps only events attributed to that trace pid (for
  /// per-party artifact files); -1 exports everything.
  std::string ToJson(int pid_filter = -1) const;
  bool WriteJson(const std::string& path, int pid_filter = -1) const;

 private:
  struct Event {
    char ph;  // 'X', 's', 'f', 'C', 'M'
    uint32_t pid;
    uint32_t tid;
    int64_t ts_us;
    int64_t dur_us;  // X only
    uint64_t id;     // s/f only
    std::string name;
    std::string args_json;
    const char* category;
  };

  void Append(Event e);

  static std::atomic<TraceRecorder*> g_current;

  const Clock::time_point origin_;
  mutable std::mutex mu_;
  std::vector<Event> events_;
  std::map<uint32_t, std::string> process_names_;
  std::map<uint32_t, ClockSyncMeta> clock_sync_;
  std::vector<RecentSpan> recent_;  ///< ring, capacity kRecentSpanCapacity
  size_t recent_next_ = 0;          ///< ring write cursor
};

/// Trace pid of the calling thread (what SetThreadParty last bound; 0 =
/// unattributed). Lets transports stamp flight-recorder entries with the
/// same party attribution the trace events carry.
uint32_t CurrentTraceThreadPid();

/// Process-wide namespace folded into every wire trace id / flow id so ids
/// minted by different OS processes never collide when their trace files are
/// merged. Multi-process drivers set this to a distinct small value per
/// process (e.g. the party's trace pid) before bringing up transports;
/// single-process runs keep the default 0.
void SetProcessTraceNamespace(uint32_t ns);
uint32_t ProcessTraceNamespace();

/// Next wire trace id: a process-global monotone sequence folded with the
/// process namespace. The namespace occupies bits 40..47 so ids survive a
/// round-trip through JSON double parsing (53-bit mantissa) intact.
uint64_t NextTraceId();

/// Folds the process namespace into a locally-unique flow id (same bit
/// layout as NextTraceId; `local` must stay below 2^40).
uint64_t NamespacedFlowId(uint64_t local);

/// Microseconds on the tracing timebase: the installed recorder's NowMicros
/// when one exists, else a process-static steady epoch. Clock-sync frames
/// use this so offsets measured during the handshake apply directly to
/// trace timestamps.
int64_t TraceNowMicros();

/// \brief RAII complete-span. Construction snapshots the active recorder and
/// the start time; destruction emits the span. All methods are no-ops when
/// no recorder is installed.
class TraceSpan {
 public:
  TraceSpan(const char* category, const char* name)
      : rec_(TraceRecorder::Current()), category_(category), name_(name) {
    if (rec_ != nullptr) start_us_ = rec_->NowMicros();
    // "phase"-category spans double as profiler phase tags (obs/phase_tag.h)
    // so SIGPROF samples inside the span carry its name — even with no
    // recorder installed (profiling without tracing). `name` is a string
    // literal per the macro contract, so the tag can hold the pointer.
    if (category != nullptr && std::strcmp(category, "phase") == 0) {
      PhaseTag* tag = MutablePhaseTag();
      prev_phase_ = tag->phase;
      tag->phase = name;
      tagged_ = true;
    }
  }
  ~TraceSpan() { End(); }

  /// Emits the span now instead of at scope exit — for phases that end
  /// mid-scope. Idempotent; later AddArg calls become no-ops.
  void End() {
    if (tagged_) {
      MutablePhaseTag()->phase = prev_phase_;
      tagged_ = false;
    }
    if (rec_ != nullptr) {
      rec_->CompleteSpan(name_, category_, start_us_,
                         rec_->NowMicros() - start_us_, std::move(args_));
      rec_ = nullptr;
    }
  }

  TraceSpan(const TraceSpan&) = delete;
  TraceSpan& operator=(const TraceSpan&) = delete;

  /// True when a recorder is installed — gate any arg-formatting work on
  /// this so disabled runs never build strings.
  bool active() const { return rec_ != nullptr; }

  void AddArg(const char* key, int64_t value);
  void AddArg(const char* key, double value);
  void AddArg(const char* key, const std::string& value);

 private:
  TraceRecorder* rec_;
  const char* category_;
  const char* name_;
  int64_t start_us_ = 0;
  std::string args_;
  const char* prev_phase_ = nullptr;
  bool tagged_ = false;
};

/// \brief RAII party binding for the calling thread: sets BOTH the trace
/// attribution (pid + process name, see TraceRecorder::SetThreadParty) and
/// the log-line context prefix (SetThreadLogContext), restoring the previous
/// binding on destruction. Engines open one of these at the top of Run() so
/// borrowed caller threads (Party B runs on the trainer's thread) are left
/// as found.
class ThreadPartyScope {
 public:
  ThreadPartyScope(uint32_t pid, const std::string& name);
  ~ThreadPartyScope();

  ThreadPartyScope(const ThreadPartyScope&) = delete;
  ThreadPartyScope& operator=(const ThreadPartyScope&) = delete;

 private:
  uint32_t prev_pid_;
  std::string prev_log_tag_;
  char prev_party_tag_[24];
};

#define VF2_TRACE_CONCAT_INNER(a, b) a##b
#define VF2_TRACE_CONCAT(a, b) VF2_TRACE_CONCAT_INNER(a, b)

/// Zero-cost-when-disabled scoped span: one atomic load when no recorder is
/// installed. Category groups spans for filtering in the viewer ("phase",
/// "comm", "crypto", ...).
#define VF2_TRACE_SPAN(category, name)             \
  ::vf2boost::obs::TraceSpan VF2_TRACE_CONCAT(     \
      _vf2_trace_span_, __LINE__)(category, name)

}  // namespace obs
}  // namespace vf2boost

#endif  // VF2BOOST_OBS_TRACE_H_
