#include "obs/prom_export.h"

#include <cctype>
#include <cstdio>
#include <cstring>
#include <map>
#include <utility>

#include "obs/build_info.h"
#include "obs/remote_metrics.h"

namespace vf2boost {
namespace obs {

namespace {

// Entries RegisterBuildInfo() puts in the registry; re-emitted here in the
// canonical Prometheus form (labels instead of a unit hack), so the raw
// entries are skipped to avoid duplicate metric families.
constexpr const char* kBuildInfoRaw = "build/info";
constexpr const char* kStartTimeRaw = "process/start_time_seconds";

std::string EscapeLabel(const std::string& s) {
  std::string out;
  for (char c : s) {
    if (c == '\\' || c == '"') out += '\\';
    if (c == '\n') {
      out += "\\n";
      continue;
    }
    out += c;
  }
  return out;
}

void AppendNumber(std::string* out, double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.9g", v);
  *out += buf;
}

struct RenderedSample {
  MetricSample sample;
  std::string party;  // "" = no party label
  std::string extra;  // preformatted extra labels, e.g. mode="user"
};

std::string LabelSet(const std::string& party, const std::string& extra = "") {
  if (party.empty() && extra.empty()) return "";
  std::string out = "{";
  if (!party.empty()) out += "party=\"" + EscapeLabel(party) + "\"";
  if (!extra.empty()) {
    if (!party.empty()) out += ",";
    out += extra;
  }
  out += "}";
  return out;
}

void RenderOne(std::string* out, const std::string& prom_name,
               const char* type, const std::vector<RenderedSample>& group) {
  *out += "# TYPE " + prom_name + " " + type + "\n";
  for (const RenderedSample& rs : group) {
    const MetricSample& s = rs.sample;
    auto with_extra = [&rs](const std::string& more) {
      if (rs.extra.empty()) return more;
      if (more.empty()) return rs.extra;
      return rs.extra + "," + more;
    };
    if (s.kind == MetricSample::Kind::kHistogram) {
      uint64_t cumulative = 0;
      double upper = s.first_upper;
      for (size_t i = 0; i + 1 < s.buckets.size(); ++i) {
        cumulative += s.buckets[i];
        std::string le = "le=\"";
        {
          char buf[64];
          std::snprintf(buf, sizeof(buf), "%.9g", upper);
          le += buf;
        }
        le += "\"";
        *out += prom_name + "_bucket" + LabelSet(rs.party, with_extra(le)) +
                " " + std::to_string(cumulative) + "\n";
        upper *= s.growth;
      }
      *out += prom_name + "_bucket" +
              LabelSet(rs.party, with_extra("le=\"+Inf\"")) + " " +
              std::to_string(s.count) + "\n";
      *out += prom_name + "_sum" + LabelSet(rs.party, with_extra("")) + " ";
      AppendNumber(out, s.sum);
      *out += "\n";
      *out += prom_name + "_count" + LabelSet(rs.party, with_extra("")) + " " +
              std::to_string(s.count) + "\n";
    } else {
      *out += prom_name + LabelSet(rs.party, with_extra("")) + " ";
      AppendNumber(out, s.value);
      *out += "\n";
    }
  }
}

}  // namespace

std::string PromMetricName(const std::string& raw, std::string* party_label) {
  party_label->clear();
  std::string rest = raw;
  if (rest.rfind("party_b/", 0) == 0) {
    *party_label = "B";
    rest = rest.substr(8);
  } else if (rest.rfind("party_a", 0) == 0) {
    size_t i = 7;
    while (i < rest.size() && std::isdigit(static_cast<unsigned char>(rest[i])))
      ++i;
    if (i > 7 && i < rest.size() && rest[i] == '/') {
      *party_label = "A" + rest.substr(7, i - 7);
      rest = rest.substr(i + 1);
    }
  }
  std::string out = "vf2_";
  for (char c : rest) {
    const bool ok = std::isalnum(static_cast<unsigned char>(c)) || c == '_' ||
                    c == ':';
    out += ok ? c : '_';
  }
  return out;
}

std::string RenderPrometheusSamples(const std::vector<MetricSample>& local,
                                    const RemoteMetrics* remote) {
  // Merge local and remote snapshots by raw name (remote wins): in the
  // in-process simulation every party shares one registry, so B's local
  // snapshot already contains A's entries — the remote copy supersedes it
  // rather than duplicating the family.
  std::map<std::string, MetricSample> merged;
  std::vector<std::string> order;
  auto add = [&](const MetricSample& s) {
    if (s.name == kBuildInfoRaw || s.name == kStartTimeRaw) return;
    auto [it, inserted] = merged.insert_or_assign(s.name, s);
    if (inserted) order.push_back(s.name);
  };
  for (const MetricSample& s : local) add(s);
  if (remote != nullptr) {
    for (const RemoteMetrics::PartyView& view : remote->All()) {
      for (const MetricSample& s : view.samples) add(s);
    }
  }

  // Group by Prometheus family name so each family gets one # TYPE line even
  // when several parties contribute series to it.
  std::map<std::string, std::vector<RenderedSample>> families;
  std::vector<std::string> family_order;
  for (const std::string& raw : order) {
    RenderedSample rs;
    rs.sample = merged.at(raw);
    std::string prom = PromMetricName(raw, &rs.party);
    // The watchdog's user/sys CPU gauges are one Prometheus family with a
    // mode label, not two: vf2_os_cpu_seconds{mode="user"|"sys"}.
    for (const char* mode : {"user", "sys"}) {
      const std::string suffix = std::string("os_cpu_seconds_") + mode;
      if (prom.size() > suffix.size() &&
          prom.compare(prom.size() - suffix.size(), suffix.size(), suffix) ==
              0) {
        prom.resize(prom.size() - std::strlen(mode) - 1);
        rs.extra = std::string("mode=\"") + mode + "\"";
        break;
      }
    }
    auto [it, inserted] = families.try_emplace(prom);
    if (inserted) family_order.push_back(prom);
    it->second.push_back(std::move(rs));
  }

  std::string out;
  const BuildInfo info = GetBuildInfo();
  out += "# TYPE vf2_build_info gauge\n";
  out += "vf2_build_info{version=\"" + EscapeLabel(info.version) +
         "\",git_sha=\"" + EscapeLabel(info.git_sha) + "\"} 1\n";
  out += "# TYPE vf2_process_start_time_seconds gauge\n";
  out += "vf2_process_start_time_seconds ";
  AppendNumber(&out, ProcessStartUnixSeconds());
  out += "\n# TYPE vf2_process_uptime_seconds gauge\n";
  out += "vf2_process_uptime_seconds ";
  AppendNumber(&out, ProcessUptimeSeconds());
  out += "\n";

  for (const std::string& prom : family_order) {
    const std::vector<RenderedSample>& group = families.at(prom);
    const MetricSample::Kind kind = group.front().sample.kind;
    const char* type = kind == MetricSample::Kind::kCounter     ? "counter"
                       : kind == MetricSample::Kind::kHistogram ? "histogram"
                                                                : "gauge";
    RenderOne(&out, prom, type, group);
  }
  return out;
}

std::string RenderPrometheus(const MetricsRegistry& registry,
                             const std::string& only_prefix,
                             const RemoteMetrics* remote) {
  return RenderPrometheusSamples(registry.Snapshot(only_prefix), remote);
}

}  // namespace obs
}  // namespace vf2boost
