#include "obs/trace.h"

#include <cstdio>
#include <cstring>

#include "common/logging.h"
#include "obs/profiler.h"

namespace vf2boost {
namespace obs {

std::atomic<TraceRecorder*> TraceRecorder::g_current{nullptr};

namespace {

// Trace attribution of the calling thread: pid set by SetThreadParty (0 =
// unattributed), tid a small dense id assigned on first use.
thread_local uint32_t t_pid = 0;
std::atomic<uint32_t> g_next_tid{1};
thread_local uint32_t t_tid = 0;

uint32_t ThreadTid() {
  if (t_tid == 0) t_tid = g_next_tid.fetch_add(1, std::memory_order_relaxed);
  return t_tid;
}

std::atomic<uint32_t> g_trace_namespace{0};
std::atomic<uint64_t> g_next_trace_seq{1};

}  // namespace

uint32_t CurrentTraceThreadPid() { return t_pid; }

void SetProcessTraceNamespace(uint32_t ns) {
  g_trace_namespace.store(ns, std::memory_order_relaxed);
}

uint32_t ProcessTraceNamespace() {
  return g_trace_namespace.load(std::memory_order_relaxed);
}

uint64_t NamespacedFlowId(uint64_t local) {
  // Namespace at bits 40..47: high enough that per-process sequences never
  // reach it, low enough that the composed id stays under 2^48 and survives
  // the double-precision parse in trace_check exactly.
  return (static_cast<uint64_t>(ProcessTraceNamespace()) << 40) | local;
}

uint64_t NextTraceId() {
  return NamespacedFlowId(
      g_next_trace_seq.fetch_add(1, std::memory_order_relaxed));
}

int64_t TraceNowMicros() {
  if (TraceRecorder* rec = TraceRecorder::Current(); rec != nullptr) {
    return rec->NowMicros();
  }
  static const TraceRecorder::Clock::time_point epoch =
      TraceRecorder::Clock::now();
  return std::chrono::duration_cast<std::chrono::microseconds>(
             TraceRecorder::Clock::now() - epoch)
      .count();
}

TraceRecorder::TraceRecorder() : origin_(Clock::now()) {}

TraceRecorder::~TraceRecorder() {
  // Detach if we are still the global recorder so no site dangles into a
  // destroyed object.
  TraceRecorder* expected = this;
  g_current.compare_exchange_strong(expected, nullptr,
                                    std::memory_order_acq_rel);
}

void TraceRecorder::Install() {
  g_current.store(this, std::memory_order_release);
}

void TraceRecorder::Uninstall() {
  g_current.store(nullptr, std::memory_order_release);
}

void TraceRecorder::SetThreadParty(uint32_t pid,
                                   const std::string& process_name) {
  t_pid = pid;
  TraceRecorder* rec = Current();
  if (rec == nullptr) return;
  std::lock_guard<std::mutex> lock(rec->mu_);
  rec->process_names_[pid] = process_name;
}

void TraceRecorder::SetClockSync(uint32_t pid, const ClockSyncMeta& meta) {
  std::lock_guard<std::mutex> lock(mu_);
  clock_sync_[pid] = meta;
}

std::map<uint32_t, TraceRecorder::ClockSyncMeta>
TraceRecorder::ClockSyncEntries() const {
  std::lock_guard<std::mutex> lock(mu_);
  return clock_sync_;
}

int64_t TraceRecorder::NowMicros() const {
  return std::chrono::duration_cast<std::chrono::microseconds>(Clock::now() -
                                                               origin_)
      .count();
}

void TraceRecorder::Append(Event e) {
  e.pid = t_pid;
  e.tid = ThreadTid();
  std::lock_guard<std::mutex> lock(mu_);
  if (e.ph == 'X') {
    RecentSpan span{e.name, e.pid, e.tid, e.ts_us, e.dur_us};
    if (recent_.size() < kRecentSpanCapacity) {
      recent_.push_back(std::move(span));
    } else {
      recent_[recent_next_] = std::move(span);
      recent_next_ = (recent_next_ + 1) % kRecentSpanCapacity;
    }
  }
  events_.push_back(std::move(e));
}

void TraceRecorder::CompleteSpan(std::string name, const char* category,
                                 int64_t ts_us, int64_t dur_us,
                                 std::string args_json) {
  Event e;
  e.ph = 'X';
  e.ts_us = ts_us;
  e.dur_us = dur_us < 1 ? 1 : dur_us;  // zero-width spans vanish in viewers
  e.id = 0;
  e.name = std::move(name);
  e.args_json = std::move(args_json);
  e.category = category;
  Append(std::move(e));
}

void TraceRecorder::FlowStart(std::string name, uint64_t id,
                              std::string args_json) {
  const int64_t now = NowMicros();
  // Anchor span: flow arrows bind to enclosing slices in the viewer.
  CompleteSpan(name, "comm", now, 1, std::move(args_json));
  Event e;
  e.ph = 's';
  e.ts_us = now;
  e.dur_us = 0;
  e.id = id;
  e.name = std::move(name);
  e.category = "comm";
  Append(std::move(e));
}

void TraceRecorder::FlowEnd(std::string name, uint64_t id,
                            std::string args_json) {
  const int64_t now = NowMicros();
  CompleteSpan(name, "comm", now, 1, std::move(args_json));
  Event e;
  e.ph = 'f';
  e.ts_us = now;
  e.dur_us = 0;
  e.id = id;
  e.name = std::move(name);
  e.category = "comm";
  Append(std::move(e));
}

void TraceRecorder::CounterValue(std::string name, double value) {
  Event e;
  e.ph = 'C';
  e.ts_us = NowMicros();
  e.dur_us = 0;
  e.id = 0;
  e.name = std::move(name);
  char buf[64];
  std::snprintf(buf, sizeof(buf), "\"value\":%.6g", value);
  e.args_json = buf;
  e.category = "gauge";
  Append(std::move(e));
}

size_t TraceRecorder::num_events() const {
  std::lock_guard<std::mutex> lock(mu_);
  return events_.size();
}

std::vector<TraceRecorder::SpanView> TraceRecorder::CompleteSpans() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<SpanView> out;
  for (const Event& e : events_) {
    if (e.ph != 'X') continue;
    out.push_back(SpanView{&e.name, e.pid, e.tid, e.ts_us, e.dur_us});
  }
  return out;
}

std::map<uint32_t, std::string> TraceRecorder::ProcessNames() const {
  std::lock_guard<std::mutex> lock(mu_);
  return process_names_;
}

std::vector<TraceRecorder::RecentSpan> TraceRecorder::RecentSpans() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<RecentSpan> out;
  out.reserve(recent_.size());
  // Once the ring is full, recent_next_ points at the oldest entry.
  const size_t start = recent_.size() < kRecentSpanCapacity ? 0 : recent_next_;
  for (size_t i = 0; i < recent_.size(); ++i) {
    out.push_back(recent_[(start + i) % recent_.size()]);
  }
  return out;
}

namespace {

std::string JsonEscape(const std::string& s) {
  std::string out;
  for (char c : s) {
    if (c == '"' || c == '\\') out += '\\';
    out += c;
  }
  return out;
}

}  // namespace

std::string TraceRecorder::ToJson(int pid_filter) const {
  std::lock_guard<std::mutex> lock(mu_);
  std::string out = "{\"traceEvents\":[\n";
  bool first = true;
  char buf[256];
  // Process-name metadata first so viewers label the pid rows.
  for (const auto& [pid, name] : process_names_) {
    if (pid_filter >= 0 && pid != static_cast<uint32_t>(pid_filter)) continue;
    std::snprintf(buf, sizeof(buf),
                  "%s{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":%u,"
                  "\"tid\":0,\"ts\":0,\"args\":{\"name\":\"%s\"}}",
                  first ? "" : ",\n", pid, JsonEscape(name).c_str());
    out += buf;
    first = false;
  }
  for (const Event& e : events_) {
    if (pid_filter >= 0 && e.pid != static_cast<uint32_t>(pid_filter)) {
      continue;
    }
    std::snprintf(buf, sizeof(buf),
                  "%s{\"name\":\"%s\",\"cat\":\"%s\",\"ph\":\"%c\","
                  "\"ts\":%lld,\"pid\":%u,\"tid\":%u",
                  first ? "" : ",\n", JsonEscape(e.name).c_str(),
                  e.category == nullptr ? "" : e.category, e.ph,
                  static_cast<long long>(e.ts_us), e.pid, e.tid);
    out += buf;
    first = false;
    if (e.ph == 'X') {
      std::snprintf(buf, sizeof(buf), ",\"dur\":%lld",
                    static_cast<long long>(e.dur_us));
      out += buf;
    }
    if (e.ph == 's' || e.ph == 'f') {
      std::snprintf(buf, sizeof(buf), ",\"id\":%llu",
                    static_cast<unsigned long long>(e.id));
      out += buf;
      if (e.ph == 'f') out += ",\"bp\":\"e\"";
    }
    if (!e.args_json.empty()) {
      out += ",\"args\":{" + e.args_json + "}";
    }
    out += "}";
  }
  out += "\n],\"displayTimeUnit\":\"ms\"";
  // Clock-alignment metadata: vf2_trace_merge reads this to shift the file
  // onto the reference party's timeline. Not part of the trace-event spec;
  // viewers ignore unknown top-level keys.
  bool first_cs = true;
  for (const auto& [pid, cs] : clock_sync_) {
    if (pid_filter >= 0 && pid != static_cast<uint32_t>(pid_filter)) continue;
    out += first_cs ? ",\"clockSync\":[" : ",";
    first_cs = false;
    std::snprintf(buf, sizeof(buf),
                  "{\"pid\":%u,\"offset_us\":%lld,\"uncertainty_us\":%lld,"
                  "\"rtt_us\":%lld,\"samples\":%u,\"reference\":%s}",
                  pid, static_cast<long long>(cs.offset_us),
                  static_cast<long long>(cs.uncertainty_us),
                  static_cast<long long>(cs.rtt_us), cs.samples,
                  cs.reference ? "true" : "false");
    out += buf;
  }
  if (!first_cs) out += "]";
  out += "}\n";
  return out;
}

bool TraceRecorder::WriteJson(const std::string& path, int pid_filter) const {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    VF2_LOG(Error) << "cannot open " << path << " for writing";
    return false;
  }
  const std::string json = ToJson(pid_filter);
  const bool ok = std::fwrite(json.data(), 1, json.size(), f) == json.size();
  std::fclose(f);
  if (!ok) VF2_LOG(Error) << "short write to " << path;
  return ok;
}

void TraceSpan::AddArg(const char* key, int64_t value) {
  if (rec_ == nullptr) return;
  if (!args_.empty()) args_ += ",";
  char buf[96];
  std::snprintf(buf, sizeof(buf), "\"%s\":%lld", key,
                static_cast<long long>(value));
  args_ += buf;
}

void TraceSpan::AddArg(const char* key, double value) {
  if (rec_ == nullptr) return;
  if (!args_.empty()) args_ += ",";
  char buf[96];
  std::snprintf(buf, sizeof(buf), "\"%s\":%.6g", key, value);
  args_ += buf;
}

void TraceSpan::AddArg(const char* key, const std::string& value) {
  if (rec_ == nullptr) return;
  if (!args_.empty()) args_ += ",";
  args_ += "\"" + std::string(key) + "\":\"" + JsonEscape(value) + "\"";
}

ThreadPartyScope::ThreadPartyScope(uint32_t pid, const std::string& name)
    : prev_pid_(t_pid), prev_log_tag_(GetThreadLogContext()) {
  TraceRecorder::SetThreadParty(pid, name);
  SetThreadLogContext(name);
  // Profiler attribution: samples taken on this thread carry the party
  // name ("party B" -> "party_b"), and the thread becomes sampleable.
  std::memcpy(prev_party_tag_, MutablePhaseTag()->party,
              sizeof(prev_party_tag_));
  SetThreadPartyTag(name.c_str());
  ProfilerRegisterCurrentThread();
}

ThreadPartyScope::~ThreadPartyScope() {
  t_pid = prev_pid_;
  SetThreadLogContext(prev_log_tag_);
  std::memcpy(MutablePhaseTag()->party, prev_party_tag_,
              sizeof(prev_party_tag_));
}

}  // namespace obs
}  // namespace vf2boost
