#ifndef VF2BOOST_OBS_LIVE_STATUS_H_
#define VF2BOOST_OBS_LIVE_STATUS_H_

#include <atomic>
#include <cstdint>

namespace vf2boost {
namespace obs {

/// \brief Lock-free live view of one party engine's training position.
///
/// The engine thread is the only writer (the single-writer rule from
/// fed/protocol.h extends to this struct); the ops server reads concurrently
/// with relaxed loads. Readers may observe a tree/layer/phase triple that is
/// one step stale or torn across fields — acceptable for a status page,
/// which is why this is not part of FedStats.
///
/// Phase names must be string literals (static storage duration): PhaseClock
/// passes its trace_name, so a reader can dereference the pointer at any
/// later time.
class LiveStatus {
 public:
  enum class State : int {
    kIdle = 0,
    kTraining = 1,
    kReconnecting = 2,
    kDone = 3,
    kFailed = 4,
  };

  void SetState(State s) { state_.store(s, std::memory_order_relaxed); }
  State state() const { return state_.load(std::memory_order_relaxed); }

  void SetTree(int64_t t) { tree_.store(t, std::memory_order_relaxed); }
  int64_t tree() const { return tree_.load(std::memory_order_relaxed); }

  void SetLayer(int64_t l) { layer_.store(l, std::memory_order_relaxed); }
  int64_t layer() const { return layer_.load(std::memory_order_relaxed); }

  void SetPhase(const char* literal) {
    phase_.store(literal, std::memory_order_relaxed);
  }
  const char* phase() const { return phase_.load(std::memory_order_relaxed); }

  static const char* StateName(State s) {
    switch (s) {
      case State::kIdle:
        return "idle";
      case State::kTraining:
        return "training";
      case State::kReconnecting:
        return "reconnecting";
      case State::kDone:
        return "done";
      case State::kFailed:
        return "failed";
    }
    return "unknown";
  }

 private:
  std::atomic<State> state_{State::kIdle};
  std::atomic<int64_t> tree_{-1};
  std::atomic<int64_t> layer_{-1};
  std::atomic<const char*> phase_{""};
};

}  // namespace obs
}  // namespace vf2boost

#endif  // VF2BOOST_OBS_LIVE_STATUS_H_
