#include "obs/metrics_registry.h"

#include <cmath>
#include <cstdio>

#include "common/logging.h"

namespace vf2boost {
namespace obs {

void Histogram::Observe(double v) {
  count_.fetch_add(1, std::memory_order_relaxed);
  double cur = sum_.load(std::memory_order_relaxed);
  while (!sum_.compare_exchange_weak(cur, cur + v,
                                     std::memory_order_relaxed)) {
  }
  cur = min_.load(std::memory_order_relaxed);
  while (v < cur &&
         !min_.compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
  }
  cur = max_.load(std::memory_order_relaxed);
  while (v > cur &&
         !max_.compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
  }
  size_t i = 0;
  double upper = first_upper_;
  while (i < kBuckets && v > upper) {
    upper *= growth_;
    ++i;
  }
  buckets_[i].fetch_add(1, std::memory_order_relaxed);
}

double Histogram::min() const {
  return count() == 0 ? 0 : min_.load(std::memory_order_relaxed);
}

double Histogram::mean() const {
  const uint64_t n = count();
  return n == 0 ? 0 : sum() / static_cast<double>(n);
}

double Histogram::BucketUpper(size_t i) const {
  return first_upper_ * std::pow(growth_, static_cast<double>(i));
}

MetricsRegistry::Entry* MetricsRegistry::Find(const std::string& name,
                                              Kind kind) {
  auto it = entries_.find(name);
  if (it == entries_.end()) {
    Entry e;
    e.kind = kind;
    switch (kind) {
      case Kind::kCounter:
        e.counter = std::make_unique<Counter>();
        break;
      case Kind::kGauge:
        e.gauge = std::make_unique<Gauge>();
        break;
      case Kind::kHistogram:
        e.histogram = std::make_unique<Histogram>();
        break;
      case Kind::kValue:
        break;
    }
    it = entries_.emplace(name, std::move(e)).first;
    order_.push_back(name);
  }
  VF2_CHECK(it->second.kind == kind)
      << "metric '" << name << "' re-registered with a different kind";
  return &it->second;
}

Counter* MetricsRegistry::GetCounter(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  return Find(name, Kind::kCounter)->counter.get();
}

Gauge* MetricsRegistry::GetGauge(const std::string& name,
                                 const std::string& unit) {
  std::lock_guard<std::mutex> lock(mu_);
  Entry* e = Find(name, Kind::kGauge);
  if (!unit.empty()) e->unit = unit;
  return e->gauge.get();
}

Histogram* MetricsRegistry::GetHistogram(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  Entry* e = Find(name, Kind::kHistogram);
  e->unit = "s";
  return e->histogram.get();
}

void MetricsRegistry::SetValue(const std::string& name, double value,
                               const std::string& unit) {
  std::lock_guard<std::mutex> lock(mu_);
  Entry* e = Find(name, Kind::kValue);
  e->value = value;
  e->unit = unit;
}

bool MetricsRegistry::empty() const {
  std::lock_guard<std::mutex> lock(mu_);
  return entries_.empty();
}

size_t MetricsRegistry::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return entries_.size();
}

std::string PartyArtifactPath(const std::string& path,
                              const std::string& party) {
  const size_t slash = path.find_last_of('/');
  const size_t dot = path.find_last_of('.');
  if (dot == std::string::npos || (slash != std::string::npos && dot < slash)) {
    return path + "." + party;
  }
  return path.substr(0, dot) + "." + party + path.substr(dot);
}

std::vector<MetricSample> MetricsRegistry::Snapshot(
    const std::string& prefix) const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<MetricSample> out;
  for (const std::string& name : order_) {
    if (name.rfind(prefix, 0) != 0) continue;
    const Entry& e = entries_.at(name);
    MetricSample s;
    s.name = name;
    s.unit = e.unit;
    switch (e.kind) {
      case Kind::kCounter:
        s.kind = MetricSample::Kind::kCounter;
        s.unit = "count";
        s.value = static_cast<double>(e.counter->value());
        break;
      case Kind::kGauge:
        s.kind = MetricSample::Kind::kGauge;
        s.value = e.gauge->value();
        break;
      case Kind::kHistogram: {
        const Histogram& h = *e.histogram;
        s.kind = MetricSample::Kind::kHistogram;
        s.count = h.count();
        s.sum = h.sum();
        s.min = h.min();
        s.max = h.max();
        s.first_upper = h.first_upper();
        s.growth = h.growth();
        s.buckets.resize(Histogram::kBuckets + 1);
        for (size_t i = 0; i <= Histogram::kBuckets; ++i) {
          s.buckets[i] = h.BucketCount(i);
        }
        break;
      }
      case Kind::kValue:
        s.kind = MetricSample::Kind::kValue;
        s.value = e.value;
        break;
    }
    out.push_back(std::move(s));
  }
  return out;
}

namespace {

std::string Escape(const std::string& s) {
  std::string out;
  for (char c : s) {
    if (c == '"' || c == '\\') out += '\\';
    out += c;
  }
  return out;
}

void AppendEntry(std::string* out, bool* first, const std::string& name,
                 double value, const std::string& unit) {
  char buf[512];
  std::snprintf(buf, sizeof(buf),
                "%s    {\"name\": \"%s\", \"value\": %.6g, \"unit\": \"%s\"}",
                *first ? "" : ",\n", Escape(name).c_str(), value,
                Escape(unit).c_str());
  *out += buf;
  *first = false;
}

}  // namespace

std::string MetricsRegistry::ToJson(const std::string& prefix) const {
  std::lock_guard<std::mutex> lock(mu_);
  std::string out = "{\n  \"benchmarks\": [\n";
  bool first = true;
  for (const std::string& name : order_) {
    if (name.rfind(prefix, 0) != 0) continue;
    const Entry& e = entries_.at(name);
    switch (e.kind) {
      case Kind::kCounter:
        AppendEntry(&out, &first, name,
                    static_cast<double>(e.counter->value()), "count");
        break;
      case Kind::kGauge:
        AppendEntry(&out, &first, name, e.gauge->value(),
                    e.unit.empty() ? "value" : e.unit);
        break;
      case Kind::kHistogram: {
        const Histogram& h = *e.histogram;
        AppendEntry(&out, &first, name, h.sum(), "s");
        AppendEntry(&out, &first, name + "/count",
                    static_cast<double>(h.count()), "count");
        AppendEntry(&out, &first, name + "/mean", h.mean(), "s");
        AppendEntry(&out, &first, name + "/min", h.min(), "s");
        AppendEntry(&out, &first, name + "/max", h.max(), "s");
        break;
      }
      case Kind::kValue:
        AppendEntry(&out, &first, name, e.value, e.unit);
        break;
    }
  }
  out += "\n  ]\n}\n";
  return out;
}

bool MetricsRegistry::WriteJson(const std::string& path,
                                const std::string& prefix) const {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    VF2_LOG(Error) << "cannot open " << path << " for writing";
    return false;
  }
  const std::string json = ToJson(prefix);
  const bool ok = std::fwrite(json.data(), 1, json.size(), f) == json.size();
  std::fclose(f);
  if (!ok) VF2_LOG(Error) << "short write to " << path;
  return ok;
}

}  // namespace obs
}  // namespace vf2boost
