#include "obs/remote_metrics.h"

#include <utility>

namespace vf2boost {
namespace obs {

bool RemoteMetrics::Update(const std::string& party, uint64_t seq,
                           std::vector<MetricSample> samples) {
  std::lock_guard<std::mutex> lock(mu_);
  PartyView& view = parties_[party];
  if (!view.party.empty() && seq <= view.seq) return false;
  view.party = party;
  view.seq = seq;
  view.samples = std::move(samples);
  return true;
}

std::vector<std::string> RemoteMetrics::Parties() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<std::string> out;
  out.reserve(parties_.size());
  for (const auto& [party, view] : parties_) out.push_back(party);
  return out;
}

RemoteMetrics::PartyView RemoteMetrics::View(const std::string& party) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = parties_.find(party);
  return it == parties_.end() ? PartyView{} : it->second;
}

std::vector<RemoteMetrics::PartyView> RemoteMetrics::All() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<PartyView> out;
  out.reserve(parties_.size());
  for (const auto& [party, view] : parties_) out.push_back(view);
  return out;
}

bool RemoteMetrics::empty() const {
  std::lock_guard<std::mutex> lock(mu_);
  return parties_.empty();
}

}  // namespace obs
}  // namespace vf2boost
