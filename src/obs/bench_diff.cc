#include "obs/bench_diff.h"

#include <algorithm>

#include "obs/trace_check.h"

namespace vf2boost {
namespace obs {

bool ParseBenchJson(const std::string& text, BenchMap* out,
                    std::string* error) {
  JsonValue root;
  if (!ParseJson(text, &root, error)) return false;
  const JsonValue* benches =
      root.is_object() ? root.Get("benchmarks") : nullptr;
  if (benches == nullptr || !benches->is_array()) {
    *error = "no top-level \"benchmarks\" array";
    return false;
  }
  for (const JsonValue& b : benches->array) {
    const JsonValue* name = b.Get("name");
    const JsonValue* value = b.Get("value");
    const JsonValue* unit = b.Get("unit");
    if (name == nullptr || !name->is_string() || value == nullptr ||
        !value->is_number()) {
      continue;
    }
    BenchEntry entry;
    entry.value = value->number;
    if (unit != nullptr && unit->is_string()) entry.unit = unit->string;
    (*out)[name->string] = entry;
  }
  return true;
}

bool HigherIsBetter(const std::string& unit) {
  return unit == "ops/s" || unit == "x" || unit == "items/s";
}

bool LowerIsBetter(const std::string& unit) { return unit == "s"; }

std::vector<std::string> SplitCommaList(const std::string& csv) {
  std::vector<std::string> out;
  size_t pos = 0;
  while (pos <= csv.size()) {
    const size_t comma = csv.find(',', pos);
    const size_t end = comma == std::string::npos ? csv.size() : comma;
    if (end > pos) out.push_back(csv.substr(pos, end - pos));
    if (comma == std::string::npos) break;
    pos = comma + 1;
  }
  return out;
}

const char* BenchStatusName(BenchDiffRow::Status status) {
  switch (status) {
    case BenchDiffRow::Status::kOk:
      return "ok";
    case BenchDiffRow::Status::kInfo:
      return "info";
    case BenchDiffRow::Status::kRegressed:
      return "REGRESSED";
    case BenchDiffRow::Status::kMissing:
      return "MISSING";
    case BenchDiffRow::Status::kNew:
      return "NEW";
  }
  return "unknown";
}

BenchDiffReport DiffBenchmarks(const BenchMap& baseline, const BenchMap& current,
                               const BenchDiffOptions& options) {
  const auto gated = [&options](const std::string& unit) {
    if (options.units.empty()) return true;
    return std::find(options.units.begin(), options.units.end(), unit) !=
           options.units.end();
  };

  BenchDiffReport report;
  for (const auto& [name, b] : baseline) {
    BenchDiffRow row;
    row.name = name;
    row.unit = b.unit;
    row.baseline = b.value;
    row.has_baseline = true;
    const auto it = current.find(name);
    if (it == current.end()) {
      row.status = BenchDiffRow::Status::kMissing;
      if (gated(b.unit)) ++report.regressions;
      report.rows.push_back(std::move(row));
      continue;
    }
    row.has_current = true;
    row.current = it->second.value;
    row.delta =
        b.value == 0 ? 0 : (row.current - b.value) / b.value;
    bool regressed = false;
    if (!gated(b.unit)) {
      row.status = BenchDiffRow::Status::kInfo;
    } else if (HigherIsBetter(b.unit)) {
      // A zero baseline cannot regress further down (values are magnitudes).
      regressed = b.value != 0 && row.delta < -options.tolerance;
      row.status = regressed ? BenchDiffRow::Status::kRegressed
                             : BenchDiffRow::Status::kOk;
    } else if (LowerIsBetter(b.unit)) {
      // Relative tolerance is meaningless off a zero baseline: any cost
      // appearing where there was none is a regression.
      regressed = b.value == 0 ? row.current > 0
                               : row.delta > options.tolerance;
      row.status = regressed ? BenchDiffRow::Status::kRegressed
                             : BenchDiffRow::Status::kOk;
    } else {
      row.status = BenchDiffRow::Status::kInfo;
    }
    if (regressed) ++report.regressions;
    report.rows.push_back(std::move(row));
  }
  for (const auto& [name, c] : current) {
    if (baseline.find(name) != baseline.end()) continue;
    BenchDiffRow row;
    row.name = name;
    row.unit = c.unit;
    row.current = c.value;
    row.has_current = true;
    row.status = BenchDiffRow::Status::kNew;
    report.rows.push_back(std::move(row));
  }
  return report;
}

}  // namespace obs
}  // namespace vf2boost
