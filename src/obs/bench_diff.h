#ifndef VF2BOOST_OBS_BENCH_DIFF_H_
#define VF2BOOST_OBS_BENCH_DIFF_H_

#include <map>
#include <string>
#include <vector>

namespace vf2boost {
namespace obs {

/// One entry of a flat benchmark/metrics dump.
struct BenchEntry {
  double value = 0;
  std::string unit;
};

using BenchMap = std::map<std::string, BenchEntry>;

/// Parses {"benchmarks": [{name, value, unit}...]} — the shape shared by the
/// metrics registry dump and the BENCH_*.json files (extra fields ignored;
/// entries without a string name + numeric value are skipped).
bool ParseBenchJson(const std::string& text, BenchMap* out,
                    std::string* error);

/// Gate direction by unit: throughput-like units regress when they drop,
/// time-like units regress when they grow; anything else is informational.
bool HigherIsBetter(const std::string& unit);
bool LowerIsBetter(const std::string& unit);

/// "a,b,c" -> {"a","b","c"} ("" -> {}); used for --units style flags.
std::vector<std::string> SplitCommaList(const std::string& csv);

struct BenchDiffOptions {
  double tolerance = 0.15;  ///< relative regression tolerance
  /// Units to gate; empty = every gateable unit. Absolute throughput
  /// baselines only transfer between identical machines, while ratio
  /// metrics (unit "x") are hardware-independent — CI gates those.
  std::vector<std::string> units;
};

struct BenchDiffRow {
  enum class Status { kOk, kInfo, kRegressed, kMissing, kNew };
  std::string name;
  std::string unit;
  double baseline = 0;
  double current = 0;
  /// Relative change (current-baseline)/baseline; 0 when the baseline is 0
  /// (the zero-baseline regression is carried by `status`, not the ratio).
  double delta = 0;
  bool has_baseline = false;
  bool has_current = false;
  Status status = Status::kInfo;
};

struct BenchDiffReport {
  std::vector<BenchDiffRow> rows;  ///< baseline order, then NEW rows
  int regressions = 0;             ///< kRegressed + gated kMissing rows
};

const char* BenchStatusName(BenchDiffRow::Status status);

/// Diffs `current` against `baseline`:
///  - a gated metric missing from current counts as a regression (a deleted
///    benchmark must be removed from the baseline deliberately);
///  - a metric only in current is reported as NEW, never gated;
///  - zero-valued baselines gate by sign, not ratio: for a lower-is-better
///    unit, 0 -> anything positive is a regression (the relative-delta rule
///    would wave every blowup from a zero cost through);
///  - direction is per-row by that row's unit, so mixed-unit files gate each
///    metric the right way.
BenchDiffReport DiffBenchmarks(const BenchMap& baseline, const BenchMap& current,
                               const BenchDiffOptions& options);

}  // namespace obs
}  // namespace vf2boost

#endif  // VF2BOOST_OBS_BENCH_DIFF_H_
