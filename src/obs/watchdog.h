#ifndef VF2BOOST_OBS_WATCHDOG_H_
#define VF2BOOST_OBS_WATCHDOG_H_

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <mutex>
#include <string>
#include <thread>

#include "obs/live_status.h"
#include "obs/metrics_registry.h"

namespace vf2boost {
namespace obs {

/// \brief Detects a wedged training run by watching LiveStatus for progress.
///
/// A background thread samples the engine's (state, tree, layer, phase)
/// position. While the engine is in an active state (kTraining or
/// kReconnecting) and the position does not change for longer than the stall
/// budget, the watchdog declares a stall: it exports the stall through
/// `seconds_since_progress` / `stalls` metrics, fires the on_stall hook once
/// per episode (flight-recorder dump), and /healthz flips to 503 while
/// stalled() is true. Progress at any later sample ends the episode.
///
/// The typical cause is a hung REMOTE party: the local engine blocks forever
/// in comm_wait with a healthy process and no state transition of its own,
/// which no exit code or crash dump would ever surface.
class StallWatchdog {
 public:
  struct Options {
    /// Seconds without a position change before a stall is declared.
    /// <= 0 disables stall detection — the watchdog then runs purely as a
    /// resource accountant (see the os/* gauges below).
    double budget_seconds = 60;
    /// Engine position to watch (required; must outlive the watchdog).
    const LiveStatus* live = nullptr;
    /// When set, `<metric_prefix>/watchdog/seconds_since_progress` (gauge)
    /// and `<metric_prefix>/watchdog/stalls` (counter) are exported, plus
    /// process-level resource gauges sampled every poll tick:
    /// `<metric_prefix>/os/rss_bytes`, `.../os/peak_rss_bytes`,
    /// `.../os/cpu_seconds/user`, `.../os/cpu_seconds/sys` and
    /// `.../os/heap_allocated_bytes` — memory/CPU trending on /metrics for
    /// every run, profiler or not.
    MetricsRegistry* registry = nullptr;
    std::string metric_prefix;
    /// Fired from the watchdog thread on the sample that first declares a
    /// stall (once per episode). Keep it cheap and non-blocking.
    std::function<void()> on_stall;
    double poll_interval_seconds = 0.25;
  };

  StallWatchdog() = default;
  ~StallWatchdog() { Stop(); }

  StallWatchdog(const StallWatchdog&) = delete;
  StallWatchdog& operator=(const StallWatchdog&) = delete;

  /// Launches the watch thread. No-op when already running or live == null.
  void Start(Options options);
  /// Joins the watch thread; safe to call repeatedly.
  void Stop();

  bool stalled() const { return stalled_.load(std::memory_order_relaxed); }
  double seconds_since_progress() const {
    return seconds_since_progress_.load(std::memory_order_relaxed);
  }
  double budget_seconds() const { return options_.budget_seconds; }
  /// Phase the engine was in when the current/last stall was declared
  /// (string literal, "" before any stall).
  const char* stalled_phase() const {
    return stalled_phase_.load(std::memory_order_relaxed);
  }

 private:
  void Watch();

  Options options_;
  std::thread thread_;
  std::mutex mu_;                ///< guards cv_ wakeups
  std::condition_variable cv_;
  bool stop_requested_ = false;
  std::atomic<bool> stalled_{false};
  std::atomic<double> seconds_since_progress_{0};
  std::atomic<const char*> stalled_phase_{""};
  Gauge* g_seconds_ = nullptr;
  Counter* c_stalls_ = nullptr;
  Gauge* g_rss_ = nullptr;
  Gauge* g_peak_rss_ = nullptr;
  Gauge* g_cpu_user_ = nullptr;
  Gauge* g_cpu_sys_ = nullptr;
  Gauge* g_heap_ = nullptr;
};

}  // namespace obs
}  // namespace vf2boost

#endif  // VF2BOOST_OBS_WATCHDOG_H_
