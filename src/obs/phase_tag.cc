#include "obs/phase_tag.h"

#include <cctype>
#include <cstring>

namespace vf2boost {
namespace obs {

namespace {
// Constant-initialized POD: first access from any context (including a
// signal handler on an already-registered thread) touches fully-formed
// storage. ProfilerRegisterCurrentThread additionally touches it from
// normal code before any timer is armed, forcing TLS block allocation on
// platforms with lazy dynamic TLS.
thread_local PhaseTag t_phase_tag{{0}, nullptr, -1};
}  // namespace

PhaseTag* MutablePhaseTag() { return &t_phase_tag; }

PhaseTag CurrentPhaseTag() { return t_phase_tag; }

void SetThreadPartyTag(const char* party_name) {
  PhaseTag* tag = &t_phase_tag;
  if (party_name == nullptr) {
    tag->party[0] = '\0';
    return;
  }
  size_t out = 0;
  for (const char* p = party_name; *p != '\0' && out + 1 < sizeof(tag->party);
       ++p) {
    unsigned char c = static_cast<unsigned char>(*p);
    tag->party[out++] = (c == ' ') ? '_' : static_cast<char>(std::tolower(c));
  }
  tag->party[out] = '\0';
}

ScopedPhaseTag::ScopedPhaseTag(const char* phase, int32_t tree) {
  PhaseTag* tag = &t_phase_tag;
  prev_phase_ = tag->phase;
  prev_tree_ = tag->tree;
  tag->phase = phase;
  if (tree >= 0) tag->tree = tree;
}

ScopedPhaseTag::~ScopedPhaseTag() {
  PhaseTag* tag = &t_phase_tag;
  tag->phase = prev_phase_;
  tag->tree = prev_tree_;
}

}  // namespace obs
}  // namespace vf2boost
