#include "obs/profiler.h"

#include <cxxabi.h>
#include <dlfcn.h>
#include <execinfo.h>
#include <pthread.h>
#include <signal.h>
#include <sys/resource.h>
#include <sys/syscall.h>
#include <time.h>
#include <ucontext.h>
#include <unistd.h>

#if defined(__GLIBC__)
#include <malloc.h>
#endif

#include <algorithm>
#include <atomic>
#include <cctype>
#include <chrono>
#include <condition_variable>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <memory>
#include <mutex>
#include <sstream>
#include <thread>
#include <vector>

#include "obs/phase_tag.h"

// glibc spells the SIGEV_THREAD_ID target field differently across
// versions; the kernel ABI field is _sigev_un._tid.
#ifndef sigev_notify_thread_id
#define sigev_notify_thread_id _sigev_un._tid
#endif

namespace vf2boost {
namespace obs {

namespace {

constexpr int kMaxCapturedFrames = 40;
constexpr size_t kRingSize = 8192;  // power of two
constexpr uint32_t kSlotFree = 0;
constexpr uint32_t kSlotBusy = 1;
constexpr uint32_t kSlotReady = 2;

/// One ring entry. Written entirely from the SIGPROF handler (no heap
/// pointers, fixed-size buffers), consumed by the drainer. The per-slot
/// `state` atomic carries the happens-before edge: handler CASes
/// kFree->kBusy (acquire), fills the payload, store-releases kReady; the
/// drainer load-acquires kReady, copies, store-releases kFree.
struct Slot {
  std::atomic<uint32_t> state{kSlotFree};
  char party[24];
  const char* phase;
  int32_t tree;
  void* sig_pc;
  int nframes;
  void* frames[kMaxCapturedFrames];
};

pid_t CurrentTid() { return static_cast<pid_t>(::syscall(SYS_gettid)); }

void* ExtractPc(void* ucv) {
#if defined(__x86_64__)
  auto* uc = static_cast<ucontext_t*>(ucv);
  return reinterpret_cast<void*>(uc->uc_mcontext.gregs[REG_RIP]);
#elif defined(__aarch64__)
  auto* uc = static_cast<ucontext_t*>(ucv);
  return reinterpret_cast<void*>(uc->uc_mcontext.pc);
#else
  (void)ucv;
  return nullptr;
#endif
}

/// Raw (pre-symbolization) sample identity, folded by the drainer. Frames
/// are stored root-first, already trimmed of handler machinery.
struct RawKey {
  std::string party;
  const char* phase;  // string literal or nullptr
  std::vector<void*> frames;

  bool operator<(const RawKey& o) const {
    if (int c = party.compare(o.party)) return c < 0;
    if (phase != o.phase) return phase < o.phase;
    return frames < o.frames;
  }
};

}  // namespace

// ---------------------------------------------------------------------
// Thread registry
// ---------------------------------------------------------------------

namespace {

struct ThreadEntry {
  pid_t tid = 0;
  pthread_t pt{};
  timer_t timer{};
  bool armed = false;
};

std::mutex& RegistryMutex() {
  static std::mutex* mu = new std::mutex;
  return *mu;
}

std::vector<ThreadEntry*>& Registry() {
  static std::vector<ThreadEntry*>* v = new std::vector<ThreadEntry*>;
  return *v;
}

// All transitions of g_active_impl happen under RegistryMutex(), so a
// late-registering thread never arms a timer that Stop's disarm pass
// misses. The handler reads it lock-free (guarded by g_in_handler).
struct ProfilerImplBase;
std::atomic<ProfilerImplBase*> g_active_impl{nullptr};
std::atomic<Profiler*> g_active_profiler{nullptr};
std::atomic<int> g_in_handler{0};

// Serializes whole profile-collection windows against Stop so a /pprof
// collector never sees its borrowed Active() profiler torn down mid-read.
std::mutex& CollectMutex() {
  static std::mutex* mu = new std::mutex;
  return *mu;
}

struct ProfilerImplBase {
  virtual void TakeSample(void* ucv) = 0;
  virtual int hz() const = 0;
  virtual ~ProfilerImplBase() = default;
};

bool ArmTimer(ThreadEntry* e, int hz) {
  clockid_t clk;
  if (pthread_getcpuclockid(e->pt, &clk) != 0) return false;
  struct sigevent sev;
  std::memset(&sev, 0, sizeof(sev));
  sev.sigev_notify = SIGEV_THREAD_ID;
  sev.sigev_signo = SIGPROF;
  sev.sigev_notify_thread_id = e->tid;
  if (timer_create(clk, &sev, &e->timer) != 0) return false;
  long period_ns = 1000000000L / std::max(1, hz);
  struct itimerspec its;
  its.it_interval.tv_sec = period_ns / 1000000000L;
  its.it_interval.tv_nsec = period_ns % 1000000000L;
  its.it_value = its.it_interval;
  if (timer_settime(e->timer, 0, &its, nullptr) != 0) {
    timer_delete(e->timer);
    return false;
  }
  e->armed = true;
  return true;
}

void DisarmTimer(ThreadEntry* e) {
  if (!e->armed) return;
  timer_delete(e->timer);
  e->armed = false;
}

void SigprofHandler(int /*signo*/, siginfo_t* /*info*/, void* ucv) {
  int saved_errno = errno;
  g_in_handler.fetch_add(1, std::memory_order_acquire);
  ProfilerImplBase* impl = g_active_impl.load(std::memory_order_acquire);
  if (impl != nullptr) impl->TakeSample(ucv);
  g_in_handler.fetch_sub(1, std::memory_order_release);
  errno = saved_errno;
}

void InstallHandlerOnce() {
  // Left installed for the life of the process: restoring SIGPROF's
  // default (terminate) while a deleted timer still has a signal in
  // flight would kill us. With g_active_impl null the handler is inert.
  static bool installed = [] {
    struct sigaction sa;
    std::memset(&sa, 0, sizeof(sa));
    sa.sa_sigaction = SigprofHandler;
    sa.sa_flags = SA_SIGINFO | SA_RESTART;
    sigemptyset(&sa.sa_mask);
    sigaction(SIGPROF, &sa, nullptr);
    return true;
  }();
  (void)installed;
}

struct ThreadRegistration {
  ThreadEntry* entry = nullptr;
  ~ThreadRegistration() {
    if (entry == nullptr) return;
    std::lock_guard<std::mutex> lk(RegistryMutex());
    DisarmTimer(entry);
    auto& reg = Registry();
    reg.erase(std::remove(reg.begin(), reg.end(), entry), reg.end());
    delete entry;
  }
};
thread_local ThreadRegistration t_registration;

}  // namespace

// ---------------------------------------------------------------------
// Profiler::Impl
// ---------------------------------------------------------------------

struct Profiler::Impl : ProfilerImplBase {
  ProfilerOptions opts;
  std::unique_ptr<Slot[]> ring{new Slot[kRingSize]};
  std::atomic<uint64_t> head{0};
  std::atomic<uint64_t> dropped{0};
  std::atomic<uint64_t> threads_armed{0};
  std::atomic<bool> running{false};

  // Serializes ring consumption (drainer loop vs on-demand drains).
  mutable std::mutex drain_mu;
  // Protects raw counts, symbol cache and folded sample total.
  mutable std::mutex mu;
  std::map<RawKey, uint64_t> raw;
  uint64_t folded_samples = 0;
  mutable std::map<void*, std::string> symbol_cache;

  std::thread drainer;
  std::mutex stop_mu;
  std::condition_variable stop_cv;
  bool stop_requested = false;

  int hz() const override { return opts.hz; }

  void TakeSample(void* ucv) override {
    uint64_t pos =
        head.fetch_add(1, std::memory_order_relaxed) & (kRingSize - 1);
    Slot& s = ring[pos];
    uint32_t expect = kSlotFree;
    if (!s.state.compare_exchange_strong(expect, kSlotBusy,
                                         std::memory_order_acquire,
                                         std::memory_order_relaxed)) {
      dropped.fetch_add(1, std::memory_order_relaxed);
      return;
    }
    PhaseTag* tag = MutablePhaseTag();
    std::memcpy(s.party, tag->party, sizeof(s.party));
    s.phase = tag->phase;
    s.tree = tag->tree;
    s.sig_pc = ExtractPc(ucv);
    int max_frames = std::min(opts.max_frames, kMaxCapturedFrames);
    int n = ::backtrace(s.frames, max_frames);
    s.nframes = n < 0 ? 0 : n;
    s.state.store(kSlotReady, std::memory_order_release);
  }

  /// Consumes every ready slot into `raw`. Caller holds drain_mu.
  void DrainLocked() {
    for (size_t i = 0; i < kRingSize; ++i) {
      Slot& s = ring[i];
      if (s.state.load(std::memory_order_acquire) != kSlotReady) continue;
      RawKey key;
      key.party.assign(s.party, strnlen(s.party, sizeof(s.party)));
      key.phase = s.phase;
      // Trim handler machinery: frames are leaf-first; the interrupted PC
      // (from the ucontext) marks where application code resumes. Fall
      // back to skipping the handler + trampoline frames.
      int start = -1;
      for (int f = 0; f < s.nframes; ++f) {
        if (s.frames[f] == s.sig_pc) {
          start = f;
          break;
        }
      }
      if (start < 0) start = std::min(3, s.nframes);
      key.frames.reserve(static_cast<size_t>(s.nframes - start));
      for (int f = s.nframes - 1; f >= start; --f) {
        key.frames.push_back(s.frames[f]);  // reverse: root first
      }
      s.state.store(kSlotFree, std::memory_order_release);
      std::lock_guard<std::mutex> lk(mu);
      raw[std::move(key)] += 1;
      folded_samples += 1;
    }
  }

  void DrainNow() {
    std::lock_guard<std::mutex> lk(drain_mu);
    DrainLocked();
  }

  void DrainerLoop() {
    std::unique_lock<std::mutex> lk(stop_mu);
    while (!stop_requested) {
      stop_cv.wait_for(lk, std::chrono::milliseconds(10));
      lk.unlock();
      DrainNow();
      lk.lock();
    }
  }

  /// Symbolizes one return address (fold time only — never from the
  /// handler). Sanitized for the folded grammar: no ';', no spaces.
  const std::string& Symbolize(void* pc) const {
    auto it = symbol_cache.find(pc);
    if (it != symbol_cache.end()) return it->second;
    std::string name = "[unknown]";
    // Return addresses point after the call; back up one byte so the
    // lookup lands inside the calling function.
    void* probe = static_cast<char*>(pc) - 1;
    Dl_info info;
    if (dladdr(probe, &info) != 0 && info.dli_sname != nullptr) {
      int status = 0;
      char* dem =
          abi::__cxa_demangle(info.dli_sname, nullptr, nullptr, &status);
      name = (status == 0 && dem != nullptr) ? dem : info.dli_sname;
      std::free(dem);
      // Drop the argument list — folded stacks want one token per frame.
      size_t paren = name.find('(');
      if (paren != std::string::npos) name.resize(paren);
      for (char& c : name) {
        if (c == ';' || c == ' ' || c == '\n' || c == '\t') c = '_';
      }
      if (name.empty()) name = "[unknown]";
    }
    return symbol_cache.emplace(pc, std::move(name)).first->second;
  }

  std::map<std::string, uint64_t> SymbolizedCounts() const {
    std::map<std::string, uint64_t> out;
    std::lock_guard<std::mutex> lk(mu);
    for (const auto& [key, count] : raw) {
      std::string line = key.party.empty() ? "unknown" : key.party;
      line += ';';
      line += (key.phase != nullptr) ? key.phase : "unknown";
      for (void* pc : key.frames) {
        line += ';';
        line += Symbolize(pc);
      }
      out[line] += count;
    }
    return out;
  }
};

// ---------------------------------------------------------------------
// Profiler
// ---------------------------------------------------------------------

Profiler::Profiler(ProfilerOptions opts) : impl_(new Impl) {
  impl_->opts = opts;
  if (impl_->opts.hz <= 0) impl_->opts.hz = 99;
  if (impl_->opts.max_frames <= 0) impl_->opts.max_frames = 48;
}

Profiler::~Profiler() {
  Stop();
  delete impl_;
}

bool Profiler::running() const {
  return impl_->running.load(std::memory_order_acquire);
}

Profiler* Profiler::Active() {
  return g_active_profiler.load(std::memory_order_acquire);
}

bool Profiler::Start() {
  Profiler* expect = nullptr;
  if (!g_active_profiler.compare_exchange_strong(expect, this)) return false;

  InstallHandlerOnce();
  // backtrace's first call may dlopen/allocate (libgcc lazy init) — do it
  // here, from normal code, so the handler never does.
  void* warmup[4];
  ::backtrace(warmup, 4);
  ProfilerRegisterCurrentThread();

  {
    std::lock_guard<std::mutex> lk(impl_->mu);
    impl_->raw.clear();
    impl_->folded_samples = 0;
  }
  impl_->dropped.store(0, std::memory_order_relaxed);
  impl_->running.store(true, std::memory_order_release);

  {
    std::lock_guard<std::mutex> lk(RegistryMutex());
    for (ThreadEntry* e : Registry()) {
      if (ArmTimer(e, impl_->opts.hz)) {
        impl_->threads_armed.fetch_add(1, std::memory_order_relaxed);
      }
    }
    g_active_impl.store(impl_, std::memory_order_release);
  }

  {
    std::lock_guard<std::mutex> lk(impl_->stop_mu);
    impl_->stop_requested = false;
  }
  impl_->drainer = std::thread([this] { impl_->DrainerLoop(); });
  return true;
}

void Profiler::Stop() {
  // Fast path without the collect lock: ~Profiler runs inside
  // CollectFoldedProfile's scope (locals unwind before its lock_guard), so
  // taking CollectMutex for an already-stopped profiler would self-deadlock.
  if (!impl_->running.load(std::memory_order_acquire)) return;
  std::lock_guard<std::mutex> lk(CollectMutex());
  StopLocked();
}

void Profiler::StopLocked() {
  Impl* impl = impl_;
  if (!impl->running.load(std::memory_order_acquire)) return;
  {
    std::lock_guard<std::mutex> lk(RegistryMutex());
    g_active_impl.store(nullptr, std::memory_order_release);
    for (ThreadEntry* e : Registry()) DisarmTimer(e);
  }
  // A signal already queued when its timer died still runs the handler;
  // it sees g_active_impl == nullptr, but wait out stragglers that loaded
  // the impl pointer just before we cleared it.
  while (g_in_handler.load(std::memory_order_acquire) != 0) {
    std::this_thread::yield();
  }
  {
    std::lock_guard<std::mutex> lk(impl->stop_mu);
    impl->stop_requested = true;
  }
  impl->stop_cv.notify_all();
  if (impl->drainer.joinable()) impl->drainer.join();
  impl->DrainNow();
  impl->running.store(false, std::memory_order_release);
  g_active_profiler.store(nullptr, std::memory_order_release);
}

std::map<std::string, uint64_t> Profiler::Counts() const {
  impl_->DrainNow();
  return impl_->SymbolizedCounts();
}

std::string Profiler::FoldedText(
    const std::string& party_filter,
    const std::map<std::string, uint64_t>* base) const {
  std::map<std::string, uint64_t> counts = Counts();
  if (base != nullptr) {
    for (const auto& [key, prior] : *base) {
      auto it = counts.find(key);
      if (it == counts.end()) continue;
      it->second = (it->second > prior) ? it->second - prior : 0;
      if (it->second == 0) counts.erase(it);
    }
  }
  if (!party_filter.empty()) {
    for (auto it = counts.begin(); it != counts.end();) {
      size_t semi = it->first.find(';');
      if (it->first.compare(0, semi, party_filter) != 0) {
        it = counts.erase(it);
      } else {
        ++it;
      }
    }
  }
  uint64_t total = 0;
  for (const auto& [key, n] : counts) total += n;
  std::ostringstream out;
  out << "# vf2boost folded cpu profile\n";
  out << "# hz " << impl_->opts.hz << "\n";
  out << "# samples " << total << "\n";
  out << "# dropped " << impl_->dropped.load(std::memory_order_relaxed)
      << "\n";
  if (!party_filter.empty()) out << "# party " << party_filter << "\n";
  for (const auto& [key, n] : counts) out << key << ' ' << n << "\n";
  return out.str();
}

bool Profiler::WriteFolded(const std::string& path,
                           const std::string& party_filter) const {
  std::ofstream f(path, std::ios::trunc);
  if (!f) return false;
  f << FoldedText(party_filter);
  return static_cast<bool>(f);
}

ProfilerStats Profiler::stats() const {
  impl_->DrainNow();
  ProfilerStats s;
  {
    std::lock_guard<std::mutex> lk(impl_->mu);
    s.samples = impl_->folded_samples;
  }
  s.dropped = impl_->dropped.load(std::memory_order_relaxed);
  s.threads = impl_->threads_armed.load(std::memory_order_relaxed);
  return s;
}

void ProfilerRegisterCurrentThread() {
  if (t_registration.entry != nullptr) return;
  // Force this thread's PhaseTag TLS into existence from normal code so
  // the handler never triggers lazy TLS allocation.
  MutablePhaseTag();
  auto* e = new ThreadEntry;
  e->tid = CurrentTid();
  e->pt = pthread_self();
  std::lock_guard<std::mutex> lk(RegistryMutex());
  Registry().push_back(e);
  t_registration.entry = e;
  auto* impl = static_cast<Profiler::Impl*>(
      g_active_impl.load(std::memory_order_acquire));
  if (impl != nullptr && ArmTimer(e, impl->hz())) {
    impl->threads_armed.fetch_add(1, std::memory_order_relaxed);
  }
}

std::string CollectFoldedProfile(double seconds, int hz, std::string* error) {
  if (seconds <= 0 || seconds > 120) {
    if (error != nullptr) *error = "seconds must be in (0, 120]";
    return "";
  }
  std::lock_guard<std::mutex> lk(CollectMutex());
  auto window = std::chrono::duration<double>(seconds);
  Profiler* active = Profiler::Active();
  if (active != nullptr) {
    // A long-running profiler is live: serve the delta over the window.
    // CollectMutex keeps its Stop from tearing it down under us.
    auto base = active->Counts();
    std::this_thread::sleep_for(window);
    return active->FoldedText("", &base);
  }
  Profiler temp(ProfilerOptions{hz > 0 ? hz : 99, 48});
  if (!temp.Start()) {
    if (error != nullptr) *error = "another profiler is already running";
    return "";
  }
  std::this_thread::sleep_for(window);
  temp.StopLocked();
  return temp.FoldedText();
}

// ---------------------------------------------------------------------
// Folded-profile validation
// ---------------------------------------------------------------------

bool ParseFoldedProfile(const std::string& text, FoldedProfileInfo* info,
                        std::string* error) {
  FoldedProfileInfo out;
  std::istringstream in(text);
  std::string line;
  size_t lineno = 0;
  auto fail = [&](const std::string& why) {
    if (error != nullptr) {
      *error = "line " + std::to_string(lineno) + ": " + why;
    }
    return false;
  };
  while (std::getline(in, line)) {
    ++lineno;
    if (line.empty() || line[0] == '#') {
      if (line.rfind("# hz ", 0) == 0) out.hz = std::atoi(line.c_str() + 5);
      continue;
    }
    size_t space = line.rfind(' ');
    if (space == std::string::npos || space == 0 || space + 1 >= line.size()) {
      return fail("expected 'stack count'");
    }
    const std::string stack = line.substr(0, space);
    const std::string count_str = line.substr(space + 1);
    for (char c : count_str) {
      if (!std::isdigit(static_cast<unsigned char>(c))) {
        return fail("count is not a positive integer: '" + count_str + "'");
      }
    }
    uint64_t count = 0;
    try {
      count = std::stoull(count_str);
    } catch (...) {
      return fail("count out of range: '" + count_str + "'");
    }
    if (count == 0) return fail("count must be positive");
    if (stack.find(' ') != std::string::npos) {
      return fail("stack contains a space");
    }
    std::vector<std::string> comps;
    size_t pos = 0;
    while (pos <= stack.size()) {
      size_t semi = stack.find(';', pos);
      if (semi == std::string::npos) semi = stack.size();
      comps.push_back(stack.substr(pos, semi - pos));
      pos = semi + 1;
    }
    if (comps.size() < 2) return fail("need at least party;phase components");
    for (const std::string& c : comps) {
      if (c.empty()) return fail("empty stack component");
    }
    out.lines += 1;
    out.total_samples += count;
    if (comps[1] != "unknown") out.phase_tagged += count;
    out.samples_by_phase[comps[0] + "/" + comps[1]] += count;
  }
  if (info != nullptr) *info = out;
  return true;
}

// ---------------------------------------------------------------------
// Resource accounting
// ---------------------------------------------------------------------

ResourceUsage SampleResourceUsage() {
  ResourceUsage u;
  if (std::FILE* f = std::fopen("/proc/self/statm", "r")) {
    long size_pages = 0, rss_pages = 0;
    if (std::fscanf(f, "%ld %ld", &size_pages, &rss_pages) == 2) {
      u.rss_bytes = static_cast<uint64_t>(rss_pages) *
                    static_cast<uint64_t>(sysconf(_SC_PAGESIZE));
    }
    std::fclose(f);
  }
  struct rusage ru;
  if (getrusage(RUSAGE_SELF, &ru) == 0) {
    // ru_maxrss is updated lazily by the kernel (unmap/exit accounting
    // points), so it can momentarily read below the live RSS; clamp to
    // keep the peak >= current invariant consumers rely on.
    u.peak_rss_bytes = std::max(
        static_cast<uint64_t>(ru.ru_maxrss) * 1024, u.rss_bytes);
    u.cpu_user_seconds =
        ru.ru_utime.tv_sec + ru.ru_utime.tv_usec * 1e-6;
    u.cpu_sys_seconds = ru.ru_stime.tv_sec + ru.ru_stime.tv_usec * 1e-6;
  }
#if defined(__GLIBC__) && \
    (__GLIBC__ > 2 || (__GLIBC__ == 2 && __GLIBC_MINOR__ >= 33))
  struct mallinfo2 mi = mallinfo2();
  u.heap_allocated_bytes = static_cast<uint64_t>(mi.uordblks);
  u.heap_free_bytes = static_cast<uint64_t>(mi.fordblks);
#endif
  return u;
}

std::string RenderHeapProfile() {
  ResourceUsage u = SampleResourceUsage();
  std::ostringstream out;
  out << "# vf2boost heap profile (point-in-time)\n";
  out << "rss_bytes " << u.rss_bytes << "\n";
  out << "peak_rss_bytes " << u.peak_rss_bytes << "\n";
  out << "heap_allocated_bytes " << u.heap_allocated_bytes << "\n";
  out << "heap_free_bytes " << u.heap_free_bytes << "\n";
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.3f", u.cpu_user_seconds);
  out << "cpu_user_seconds " << buf << "\n";
  std::snprintf(buf, sizeof(buf), "%.3f", u.cpu_sys_seconds);
  out << "cpu_sys_seconds " << buf << "\n";
  return out.str();
}

}  // namespace obs
}  // namespace vf2boost
