#include "obs/build_info.h"

#include <chrono>
#include <string>

#include "obs/metrics_registry.h"

#ifndef VF2_VERSION
#define VF2_VERSION "0.0.0"
#endif
#ifndef VF2_GIT_SHA
#define VF2_GIT_SHA "unknown"
#endif

namespace vf2boost {
namespace obs {

namespace {

struct ProcessClock {
  ProcessClock()
      : start_unix(std::chrono::duration<double>(
                       std::chrono::system_clock::now().time_since_epoch())
                       .count()),
        start_steady(std::chrono::steady_clock::now()) {}
  const double start_unix;
  const std::chrono::steady_clock::time_point start_steady;
};

const ProcessClock& Clock() {
  static const ProcessClock clock;
  return clock;
}

}  // namespace

BuildInfo GetBuildInfo() { return BuildInfo{VF2_VERSION, VF2_GIT_SHA}; }

double ProcessStartUnixSeconds() { return Clock().start_unix; }

double ProcessUptimeSeconds() {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       Clock().start_steady)
      .count();
}

void RegisterBuildInfo(MetricsRegistry* registry) {
  if (registry == nullptr) return;
  const BuildInfo info = GetBuildInfo();
  registry->SetValue("build/info", 1,
                     std::string(info.version) + "+" + info.git_sha);
  registry->SetValue("process/start_time_seconds", ProcessStartUnixSeconds(),
                     "s");
}

}  // namespace obs
}  // namespace vf2boost
