#ifndef VF2BOOST_OBS_REMOTE_METRICS_H_
#define VF2BOOST_OBS_REMOTE_METRICS_H_

#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <vector>

#include "obs/metrics_registry.h"

namespace vf2boost {
namespace obs {

/// \brief Store of metric snapshots received from other parties.
///
/// Party B keeps one of these; each A party's kMetricsDelta frames land here
/// keyed by a party label ("A0", "A1", ...). Frames carry cumulative values
/// and a per-sender sequence number, so replay under retransmission or
/// reconnect is idempotent: a frame whose seq is not newer than the stored
/// one is dropped.
class RemoteMetrics {
 public:
  struct PartyView {
    std::string party;
    uint64_t seq = 0;
    std::vector<MetricSample> samples;
  };

  /// Installs `samples` as party's current snapshot iff `seq` is newer than
  /// the stored sequence. Returns false (and drops the frame) otherwise.
  bool Update(const std::string& party, uint64_t seq,
              std::vector<MetricSample> samples);

  std::vector<std::string> Parties() const;
  /// Latest snapshot for one party; empty samples if unknown.
  PartyView View(const std::string& party) const;
  /// Every party's latest snapshot, ordered by label.
  std::vector<PartyView> All() const;

  bool empty() const;

 private:
  mutable std::mutex mu_;
  std::map<std::string, PartyView> parties_;
};

}  // namespace obs
}  // namespace vf2boost

#endif  // VF2BOOST_OBS_REMOTE_METRICS_H_
