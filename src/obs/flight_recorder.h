#ifndef VF2BOOST_OBS_FLIGHT_RECORDER_H_
#define VF2BOOST_OBS_FLIGHT_RECORDER_H_

#include <atomic>
#include <cstdint>
#include <string>
#include <vector>

namespace vf2boost {
namespace obs {

/// \brief Bounded lock-free ring of recent structured events — the black box
/// a crashed or wedged party leaves behind.
///
/// Writers (transport threads, engines, the watchdog) claim a slot with one
/// fetch_add and fill it without locks; readers tolerate torn entries via a
/// per-slot sequence stamp (odd = being written, skip). The ring holds the
/// last kCapacity events only: enough to reconstruct "what was the party
/// doing when it died" without unbounded memory.
///
/// Dumps happen on failure paths, SIGTERM, and watchdog trips. SIGKILL
/// cannot be caught, so engines also persist at coarse progress boundaries
/// (tree done, reconnect) when a persist path is set — the on-disk dump is
/// then at most one tree stale after a hard kill.
class FlightRecorder {
 public:
  static constexpr size_t kCapacity = 1024;  // power of two
  static constexpr size_t kDetailBytes = 40;

  enum class Kind : uint8_t {
    kFrameSent = 1,
    kFrameReceived = 2,
    kPhase = 3,
    kTreeBoundary = 4,
    kReconnect = 5,
    kStateChange = 6,
    kWatchdog = 7,
    kNote = 8,
    /// Session-layer liveness budget tripped: the peer sent nothing (not
    /// even heartbeats) for longer than the budget. `code` = channel index,
    /// `a` = observed silence (milliseconds), `b` = budget (milliseconds).
    kLiveness = 9,
  };
  static const char* KindName(Kind kind);

  FlightRecorder();
  ~FlightRecorder();

  FlightRecorder(const FlightRecorder&) = delete;
  FlightRecorder& operator=(const FlightRecorder&) = delete;

  /// Process-global instance, mirroring TraceRecorder's install protocol.
  /// Record sites load it with one relaxed atomic; nullptr = disabled.
  void Install();
  static void Uninstall();
  static FlightRecorder* Current() {
    return g_current.load(std::memory_order_acquire);
  }

  /// Appends one event. `code` is kind-specific (frame events: the raw
  /// MessageType byte), `a`/`b` likewise (frame events: payload bytes /
  /// trace id; tree boundaries: tree index). `detail` is truncated to
  /// kDetailBytes-1. Safe from any thread, also with no recorder installed
  /// via the static RecordEvent below.
  void Record(Kind kind, uint32_t code, int64_t a, int64_t b,
              const char* detail);

  /// Record on the installed instance, if any (the call sites' one-liner).
  static void RecordEvent(Kind kind, uint32_t code, int64_t a, int64_t b,
                          const char* detail);

  /// Arms automatic persistence: Record() rewrites `path` after coarse
  /// progress events (kTreeBoundary, kReconnect, kWatchdog) so a SIGKILLed
  /// process still leaves a recent dump behind.
  void SetPersistPath(const std::string& path);
  const std::string& persist_path() const { return persist_path_; }

  struct Entry {
    int64_t ts_us = 0;   ///< TraceNowMicros at record time
    uint32_t pid = 0;    ///< trace pid of the recording thread
    Kind kind = Kind::kNote;
    uint32_t code = 0;
    int64_t a = 0;
    int64_t b = 0;
    char detail[kDetailBytes] = {};
  };

  /// Consistent copy of the ring, oldest first, torn slots skipped.
  std::vector<Entry> Snapshot() const;

  /// `{"flightRecorder":{...}}` with the ring plus last-phase / last-frame
  /// convenience fields (what the acceptance drill greps for).
  std::string ToJson() const;

  /// Writes ToJson to `path`; false on I/O failure.
  bool Dump(const std::string& path) const;
  /// Dump(persist_path()); no-op without a path.
  void Persist() const;

  /// Async-signal-safe dump to the persist path: open/write/close and
  /// integer formatting only, no allocation, no locks. For the SIGTERM
  /// handler; the file has the same shape as Dump's.
  void SignalDump() const;

  size_t events_recorded() const {
    return cursor_.load(std::memory_order_relaxed);
  }

 private:
  struct Slot {
    std::atomic<uint64_t> seq{0};  ///< odd while being written
    Entry entry;
  };

  static std::atomic<FlightRecorder*> g_current;

  Slot ring_[kCapacity];
  std::atomic<uint64_t> cursor_{0};
  std::string persist_path_;
};

}  // namespace obs
}  // namespace vf2boost

#endif  // VF2BOOST_OBS_FLIGHT_RECORDER_H_
