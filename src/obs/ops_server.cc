#include "obs/ops_server.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <utility>

#include "common/logging.h"
#include "obs/build_info.h"
#include "obs/live_status.h"
#include "obs/metrics_registry.h"
#include "obs/profiler.h"
#include "obs/prom_export.h"
#include "obs/remote_metrics.h"
#include "obs/trace.h"
#include "obs/watchdog.h"

namespace vf2boost {
namespace obs {

namespace {

constexpr size_t kMaxRequestBytes = 8192;

std::string MakeResponse(int code, const char* reason,
                         const char* content_type, const std::string& body) {
  std::string out = "HTTP/1.1 " + std::to_string(code) + " " + reason + "\r\n";
  out += "Content-Type: ";
  out += content_type;
  out += "\r\nContent-Length: " + std::to_string(body.size());
  out += "\r\nConnection: close\r\n\r\n";
  out += body;
  return out;
}

std::string FormatDouble(double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.6g", v);
  return buf;
}

void AppendSampleLines(std::string* out, const std::vector<MetricSample>& samples) {
  for (const MetricSample& s : samples) {
    if (s.kind == MetricSample::Kind::kHistogram) {
      *out += "  " + s.name + ": count=" + std::to_string(s.count) +
              " sum=" + FormatDouble(s.sum) + "s mean=" +
              FormatDouble(s.count == 0 ? 0 : s.sum / static_cast<double>(s.count)) +
              "s max=" + FormatDouble(s.max) + "s\n";
    } else {
      *out += "  " + s.name + ": " + FormatDouble(s.value);
      if (!s.unit.empty() && s.unit != "value") *out += " " + s.unit;
      *out += "\n";
    }
  }
}

/// The "wire:" /statusz section: traffic-shape counters (cipher volume,
/// gh-pack amortization, TCP byte/frame/reconnect counts) plus the
/// negotiated clock offset, pulled from the same registry snapshot as the
/// full metric listing so the numbers are mutually consistent.
void AppendWireSection(std::string* out,
                       const std::vector<MetricSample>& samples) {
  std::string lines;
  double offset_us = 0, uncertainty_us = 0, rtt_us = 0, clock_samples = 0;
  bool have_clock = false;
  for (const MetricSample& s : samples) {
    if (s.kind == MetricSample::Kind::kHistogram) continue;
    if (s.name.find("/clock_sync/") != std::string::npos) {
      have_clock = true;
      if (s.name.find("offset_us") != std::string::npos) offset_us = s.value;
      if (s.name.find("uncertainty_us") != std::string::npos) {
        uncertainty_us = s.value;
      }
      if (s.name.find("rtt_us") != std::string::npos) rtt_us = s.value;
      if (s.name.find("samples") != std::string::npos) clock_samples = s.value;
      continue;
    }
    const bool wire = s.name.find("ciphers_sent") != std::string::npos ||
                      s.name.find("gh_pack_ratio") != std::string::npos ||
                      s.name.find("transport/tcp/") != std::string::npos ||
                      s.name.find("session/") != std::string::npos;
    if (!wire) continue;
    lines += "  " + s.name + ": " + FormatDouble(s.value);
    if (!s.unit.empty() && s.unit != "value") lines += " " + s.unit;
    lines += "\n";
  }
  if (lines.empty() && !have_clock) return;
  *out += "\nwire:\n";
  *out += lines;
  if (have_clock) {
    *out += "  clock_offset: " + FormatDouble(offset_us) + " us (+/- " +
            FormatDouble(uncertainty_us) + " us, rtt " + FormatDouble(rtt_us) +
            " us, " + FormatDouble(clock_samples) + " samples)\n";
  }
}

/// The "worker pool:" /statusz section: busy vs size per party prefix, so
/// an operator can tell a saturated pool (busy == size, deep queue) from an
/// idle one at a glance. Gauges come from ThreadPool::SetBusyWorkersGauge.
void AppendPoolSection(std::string* out,
                       const std::vector<MetricSample>& samples) {
  std::map<std::string, std::pair<double, double>> pools;  // prefix -> busy,sz
  for (const MetricSample& s : samples) {
    if (s.kind == MetricSample::Kind::kHistogram) continue;
    size_t mark = s.name.find("/pool/busy_workers");
    if (mark != std::string::npos) pools[s.name.substr(0, mark)].first = s.value;
    mark = s.name.find("/pool/size");
    if (mark != std::string::npos) {
      pools[s.name.substr(0, mark)].second = s.value;
    }
  }
  std::string lines;
  for (const auto& [prefix, busy_size] : pools) {
    const auto [busy, size] = busy_size;
    if (size <= 0) continue;  // engine runs without a worker pool
    char line[128];
    std::snprintf(line, sizeof(line),
                  "  %s: %.0f/%.0f workers busy (%.0f%% utilization)\n",
                  prefix.c_str(), busy, size, 100.0 * busy / size);
    lines += line;
  }
  if (lines.empty()) return;
  *out += "\nworker pool:\n";
  *out += lines;
}

}  // namespace

Result<std::unique_ptr<OpsServer>> OpsServer::Start(
    const OpsServerOptions& options) {
  std::unique_ptr<OpsServer> server(new OpsServer(options));

  const int fd = ::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
  if (fd < 0) {
    return Status::IOError(std::string("ops server socket: ") +
                           std::strerror(errno));
  }
  int one = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  const std::string& bind_address =
      options.bind_address.empty() ? "127.0.0.1" : options.bind_address;
  if (::inet_pton(AF_INET, bind_address.c_str(), &addr.sin_addr) != 1) {
    ::close(fd);
    return Status::InvalidArgument("bad ops bind address: " + bind_address);
  }
  addr.sin_port = htons(static_cast<uint16_t>(options.port));
  if (::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    const std::string err = std::strerror(errno);
    ::close(fd);
    return Status::IOError("ops server bind to " + bind_address + ":" +
                           std::to_string(options.port) + ": " + err);
  }
  if (::listen(fd, 16) != 0) {
    const std::string err = std::strerror(errno);
    ::close(fd);
    return Status::IOError("ops server listen: " + err);
  }
  socklen_t len = sizeof(addr);
  if (::getsockname(fd, reinterpret_cast<sockaddr*>(&addr), &len) != 0) {
    const std::string err = std::strerror(errno);
    ::close(fd);
    return Status::IOError("ops server getsockname: " + err);
  }

  server->listen_fd_ = fd;
  server->port_ = ntohs(addr.sin_port);
  server->thread_ = std::thread([s = server.get()] { s->Serve(); });
  VF2_LOG(Info) << "ops server for party " << options.party_label
                << " listening on " << bind_address << ":" << server->port_;
  return server;
}

OpsServer::~OpsServer() { Stop(); }

void OpsServer::Stop() {
  stop_.store(true, std::memory_order_relaxed);
  if (thread_.joinable()) thread_.join();
  if (listen_fd_ >= 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
  }
}

void OpsServer::Serve() {
  // Poll with a short timeout so Stop() is observed promptly without
  // resorting to signals or socket shutdown races.
  while (!stop_.load(std::memory_order_relaxed)) {
    pollfd pfd{listen_fd_, POLLIN, 0};
    const int n = ::poll(&pfd, 1, /*timeout_ms=*/100);
    if (n <= 0 || (pfd.revents & POLLIN) == 0) continue;
    const int conn = ::accept(listen_fd_, nullptr, nullptr);
    if (conn < 0) continue;

    timeval tv{};
    tv.tv_sec = 2;
    ::setsockopt(conn, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));
    ::setsockopt(conn, SOL_SOCKET, SO_SNDTIMEO, &tv, sizeof(tv));

    std::string request;
    char buf[1024];
    while (request.size() < kMaxRequestBytes &&
           request.find("\r\n\r\n") == std::string::npos) {
      const ssize_t got = ::recv(conn, buf, sizeof(buf), 0);
      if (got <= 0) break;
      request.append(buf, static_cast<size_t>(got));
    }

    std::string response;
    const size_t sp1 = request.find(' ');
    const size_t sp2 =
        sp1 == std::string::npos ? std::string::npos : request.find(' ', sp1 + 1);
    if (request.rfind("GET ", 0) != 0 || sp2 == std::string::npos) {
      response = MakeResponse(400, "Bad Request", "text/plain",
                              "only GET is supported\n");
    } else {
      std::string path = request.substr(sp1 + 1, sp2 - sp1 - 1);
      std::string query;
      const size_t qpos = path.find('?');
      if (qpos != std::string::npos) {
        query = path.substr(qpos + 1);
        path.resize(qpos);
      }
      response = HandlePath(path, query);
    }

    size_t sent = 0;
    while (sent < response.size()) {
      const ssize_t w =
          ::send(conn, response.data() + sent, response.size() - sent, 0);
      if (w <= 0) break;
      sent += static_cast<size_t>(w);
    }
    ::close(conn);
  }
}

std::string OpsServer::HandlePath(const std::string& path,
                                  const std::string& query) const {
  const LiveStatus::State state = options_.live != nullptr
                                      ? options_.live->state()
                                      : LiveStatus::State::kIdle;

  if (path == "/healthz") {
    const bool stalled =
        options_.watchdog != nullptr && options_.watchdog->stalled();
    const bool healthy = state != LiveStatus::State::kFailed && !stalled;
    std::string body;
    if (healthy) {
      body = "ok\n";
    } else if (stalled) {
      body = "degraded: no training progress for " +
             FormatDouble(options_.watchdog->seconds_since_progress()) +
             "s (budget " + FormatDouble(options_.watchdog->budget_seconds()) +
             "s), last phase " + options_.watchdog->stalled_phase() + "\n";
    } else {
      body = "unhealthy\n";
    }
    body += "party: " + options_.party_label + "\n";
    body += "state: " + std::string(LiveStatus::StateName(state)) + "\n";
    body += "uptime_seconds: " + FormatDouble(ProcessUptimeSeconds()) + "\n";
    return healthy ? MakeResponse(200, "OK", "text/plain", body)
                   : MakeResponse(503, "Service Unavailable", "text/plain",
                                  body);
  }

  if (path == "/metrics") {
    std::string body;
    if (options_.registry != nullptr) {
      body = RenderPrometheus(*options_.registry, options_.metric_prefix,
                              options_.remote);
    } else {
      body = RenderPrometheusSamples({}, options_.remote);
    }
    return MakeResponse(200, "OK", "text/plain; version=0.0.4", body);
  }

  if (path == "/statusz") {
    const BuildInfo info = GetBuildInfo();
    std::string body = "vf2boost party " + options_.party_label + "\n";
    body += "build: " + std::string(info.version) + "+" + info.git_sha + "\n";
    body += "uptime: " + FormatDouble(ProcessUptimeSeconds()) + "s\n";
    body += "state: " + std::string(LiveStatus::StateName(state)) + "\n";
    if (options_.live != nullptr) {
      body += "tree: " + std::to_string(options_.live->tree()) + "\n";
      body += "layer: " + std::to_string(options_.live->layer()) + "\n";
      const char* phase = options_.live->phase();
      body += "phase: " + std::string(*phase != '\0' ? phase : "-") + "\n";
    }
    if (options_.registry != nullptr) {
      const std::vector<MetricSample> samples =
          options_.registry->Snapshot(options_.metric_prefix);
      AppendPoolSection(&body, samples);
      AppendWireSection(&body, samples);
      body += "\nlocal metrics:\n";
      AppendSampleLines(&body, samples);
    }
    if (options_.remote != nullptr) {
      for (const RemoteMetrics::PartyView& view : options_.remote->All()) {
        body += "\nfederated from party " + view.party +
                " (frame " + std::to_string(view.seq) + "):\n";
        AppendSampleLines(&body, view.samples);
      }
    }
    return MakeResponse(200, "OK", "text/plain", body);
  }

  if (path == "/pprof/profile") {
    // ?seconds=N (default 2). Collection blocks this connection — the
    // accept loop is single-threaded by design, so a profile window also
    // delays other scrapes; keep windows short.
    double seconds = 2.0;
    const size_t key = query.find("seconds=");
    if (key != std::string::npos) {
      seconds = std::atof(query.c_str() + key + std::strlen("seconds="));
    }
    std::string error;
    const std::string folded = CollectFoldedProfile(seconds, 99, &error);
    if (folded.empty()) {
      return MakeResponse(400, "Bad Request", "text/plain",
                          "profile collection failed: " + error + "\n");
    }
    return MakeResponse(200, "OK", "text/plain", folded);
  }

  if (path == "/pprof/heap") {
    return MakeResponse(200, "OK", "text/plain", RenderHeapProfile());
  }

  if (path == "/tracez") {
    const TraceRecorder* rec = TraceRecorder::Current();
    if (rec == nullptr) {
      return MakeResponse(200, "OK", "text/plain",
                          "tracing disabled (no recorder installed)\n");
    }
    const auto spans = rec->RecentSpans();
    const auto names = rec->ProcessNames();
    std::string body = "most recent " + std::to_string(spans.size()) +
                       " completed spans (oldest first):\n";
    char line[192];
    for (const TraceRecorder::RecentSpan& s : spans) {
      const auto it = names.find(s.pid);
      const std::string who = it != names.end()
                                  ? it->second
                                  : "pid" + std::to_string(s.pid);
      std::snprintf(line, sizeof(line), "%12lld us %10lld us  %-12s %s\n",
                    static_cast<long long>(s.ts_us),
                    static_cast<long long>(s.dur_us), who.c_str(),
                    s.name.c_str());
      body += line;
    }
    return MakeResponse(200, "OK", "text/plain", body);
  }

  if (path == "/") {
    return MakeResponse(200, "OK", "text/plain",
                        "vf2boost ops server. endpoints: /healthz /metrics "
                        "/statusz /tracez /pprof/profile?seconds=N "
                        "/pprof/heap\n");
  }

  return MakeResponse(404, "Not Found", "text/plain",
                      "404: unknown path " + path + "\n");
}

}  // namespace obs
}  // namespace vf2boost
