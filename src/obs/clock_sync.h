#ifndef VF2BOOST_OBS_CLOCK_SYNC_H_
#define VF2BOOST_OBS_CLOCK_SYNC_H_

#include <cstdint>
#include <mutex>
#include <string>

#include "obs/metrics_registry.h"
#include "obs/trace.h"

namespace vf2boost {
namespace obs {

/// \brief NTP-style offset estimator between this process's trace clock and
/// a peer's.
///
/// Each ping/pong round yields the classic quadruple (t1, t2, t3, t4): t1/t4
/// on the local clock, t2/t3 on the peer's. Offset and round-trip follow the
/// textbook formulas
///   offset = ((t2 - t1) + (t3 - t4)) / 2,   rtt = (t4 - t1) - (t3 - t2)
/// and the estimate kept is the one from the minimum-RTT sample seen — path
/// delay asymmetry bounds the error by rtt/2, so the tightest round wins.
/// The hello handshake contributes a degenerate sample (peer's clock reading
/// with no echo of the local stamps), which seeds a coarse estimate before
/// any real round completes.
///
/// Offsets are "add to LOCAL trace timestamps to land on the PEER's
/// timeline" — the merge tool treats the peer (party B) as the reference.
///
/// Thread-safe; estimate reads and sample ingestion can race freely.
class ClockSync {
 public:
  /// Full ping/pong round. Ignores samples with negative rtt (clock went
  /// backwards / crossed a reconnect) and keeps the min-RTT estimate.
  void AddSample(int64_t t1, int64_t t2, int64_t t3, int64_t t4);

  /// Degenerate hello-handshake sample: the peer's clock reading arrived
  /// between our send (t1) and receive (t4) but echoes neither, so the best
  /// guess is peer_us against the midpoint, with the full half-round-trip
  /// as uncertainty. Only used until a real round lands (real samples always
  /// win the min-RTT comparison because hello "rtt" is inflated by the whole
  /// symmetric handshake).
  void AddHelloSample(int64_t t1, int64_t peer_us, int64_t t4);

  bool has_estimate() const;
  int64_t offset_us() const;
  int64_t uncertainty_us() const;
  int64_t rtt_us() const;
  uint32_t samples() const;

  /// Creates `<prefix>/clock_sync/{offset_us,uncertainty_us,rtt_us,samples}`
  /// gauges and keeps them updated from every subsequent sample.
  void BindMetrics(MetricsRegistry* registry, const std::string& prefix);

  /// The estimate as trace-file metadata (reference=false: this side's
  /// timestamps need shifting onto the peer's timeline).
  TraceRecorder::ClockSyncMeta ToMeta() const;

 private:
  void Ingest(int64_t offset, int64_t rtt, int64_t uncertainty, bool hello);
  void PublishLocked();

  mutable std::mutex mu_;
  bool has_estimate_ = false;
  bool estimate_from_hello_ = false;
  int64_t offset_us_ = 0;
  int64_t uncertainty_us_ = 0;
  int64_t min_rtt_us_ = 0;
  uint32_t samples_ = 0;

  Gauge* g_offset_ = nullptr;
  Gauge* g_uncertainty_ = nullptr;
  Gauge* g_rtt_ = nullptr;
  Gauge* g_samples_ = nullptr;
};

}  // namespace obs
}  // namespace vf2boost

#endif  // VF2BOOST_OBS_CLOCK_SYNC_H_
