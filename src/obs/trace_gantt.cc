#include "obs/trace_gantt.h"

#include <algorithm>
#include <cctype>
#include <cstdio>
#include <map>
#include <set>
#include <vector>

namespace vf2boost {
namespace obs {

std::string RenderTraceGantt(const TraceRecorder& recorder, size_t width) {
  auto spans = recorder.CompleteSpans();
  const auto names = recorder.ProcessNames();
  if (spans.empty() || width == 0) return "(empty trace)\n";

  // Paint long spans first: RAII spans are appended at destruction, so an
  // umbrella span (whole tree, whole run) lands AFTER the phases nested in
  // it and would otherwise paint over them. Duration order makes the
  // innermost phase win the pixel regardless of emission order.
  std::stable_sort(spans.begin(), spans.end(),
                   [](const TraceRecorder::SpanView& a,
                      const TraceRecorder::SpanView& b) {
                     return a.dur_us > b.dur_us;
                   });

  int64_t t0 = spans.front().ts_us;
  int64_t t1 = 0;
  for (const auto& s : spans) {
    t0 = std::min(t0, s.ts_us);
    t1 = std::max(t1, s.ts_us + s.dur_us);
  }
  if (t1 <= t0) return "(empty trace)\n";
  const double makespan = static_cast<double>(t1 - t0);

  // Row per (pid, tid), ordered by party then thread. Deeper/later spans
  // overwrite earlier paint, which matches how nested phase spans read:
  // the innermost phase wins the pixel.
  std::map<std::pair<uint32_t, uint32_t>, std::string> rows;
  std::map<char, std::set<std::string>> legend;
  for (const auto& s : spans) {
    auto [it, inserted] =
        rows.try_emplace({s.pid, s.tid}, std::string(width, '.'));
    std::string& row = it->second;
    size_t begin = static_cast<size_t>(
        static_cast<double>(s.ts_us - t0) / makespan * width);
    size_t end = static_cast<size_t>(
        static_cast<double>(s.ts_us + s.dur_us - t0) / makespan * width);
    begin = std::min(begin, width - 1);
    end = std::min(std::max(end, begin + 1), width);
    const char phase = s.name->empty()
                           ? '?'
                           : static_cast<char>(std::toupper(
                                 static_cast<unsigned char>((*s.name)[0])));
    for (size_t i = begin; i < end; ++i) row[i] = phase;
    legend[phase].insert(*s.name);
  }

  size_t name_width = 0;
  auto row_label = [&](uint32_t pid, uint32_t tid) {
    const auto it = names.find(pid);
    const std::string party =
        it != names.end() ? it->second : "pid" + std::to_string(pid);
    return party + "/t" + std::to_string(tid);
  };
  for (const auto& [key, row] : rows) {
    name_width = std::max(name_width, row_label(key.first, key.second).size());
  }

  std::string out;
  for (const auto& [key, row] : rows) {
    std::string label = row_label(key.first, key.second);
    label.resize(name_width, ' ');
    out += label + " |" + row + "|\n";
  }
  char footer[128];
  std::snprintf(footer, sizeof(footer), "%*s  0%*s%.3fs\n",
                static_cast<int>(name_width), "",
                static_cast<int>(width - 1), "", makespan / 1e6);
  out += footer;
  out += "  (";
  bool first = true;
  for (const auto& [phase, span_names] : legend) {
    for (const std::string& n : span_names) {
      if (!first) out += " ";
      out += std::string(1, phase) + "=" + n;
      first = false;
    }
  }
  out += ")\n";
  return out;
}

}  // namespace obs
}  // namespace vf2boost
