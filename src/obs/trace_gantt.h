#ifndef VF2BOOST_OBS_TRACE_GANTT_H_
#define VF2BOOST_OBS_TRACE_GANTT_H_

#include <string>

#include "obs/trace.h"

namespace vf2boost {
namespace obs {

/// Renders the complete spans of a REAL traced run as a text Gantt chart —
/// the live-protocol counterpart of sim/gantt.h's simulator renderer. One
/// row per (party, thread), spans painted with the first letter of their
/// name, '.' for idle; a legend maps letters back to span names. Lets the
/// Fig-4/5 overlap analysis run on actual measurements next to the
/// simulated schedule.
std::string RenderTraceGantt(const TraceRecorder& recorder,
                             size_t width = 100);

}  // namespace obs
}  // namespace vf2boost

#endif  // VF2BOOST_OBS_TRACE_GANTT_H_
