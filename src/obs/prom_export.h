#ifndef VF2BOOST_OBS_PROM_EXPORT_H_
#define VF2BOOST_OBS_PROM_EXPORT_H_

#include <string>
#include <vector>

#include "obs/metrics_registry.h"

namespace vf2boost {
namespace obs {

class RemoteMetrics;

/// Maps a registry metric name to its Prometheus name and (optional) party
/// label. The registry's party prefixes become labels instead of name parts:
///   "party_b/encryptions"      -> vf2_encryptions{party="B"}
///   "party_a0/phase/build_hist"-> vf2_phase_build_hist{party="A0"}
///   "channel/a0/to_b/bytes"    -> vf2_channel_a0_to_b_bytes   (no label)
/// Remaining '/'-separators and other non-[a-zA-Z0-9_:] characters become
/// '_'. Returns the Prometheus name; *party_label receives "" when the name
/// carries no party prefix.
std::string PromMetricName(const std::string& raw, std::string* party_label);

/// Renders Prometheus text exposition format 0.0.4 from a snapshot of
/// `registry` (filtered to names starting with `only_prefix`; "" = all),
/// merged with the latest remote snapshots in `remote` (may be null). A
/// remote sample with the same raw name as a local one wins, which dedups
/// the in-process simulation where all parties share one registry.
///
/// Histograms render as cumulative le-buckets plus _sum/_count. Every
/// exposition also self-identifies the binary:
///   vf2_build_info{version="...",git_sha="..."} 1
///   vf2_process_start_time_seconds / vf2_process_uptime_seconds
std::string RenderPrometheus(const MetricsRegistry& registry,
                             const std::string& only_prefix = "",
                             const RemoteMetrics* remote = nullptr);

/// Same, over an explicit local snapshot (for tests and custom exporters).
std::string RenderPrometheusSamples(const std::vector<MetricSample>& local,
                                    const RemoteMetrics* remote = nullptr);

}  // namespace obs
}  // namespace vf2boost

#endif  // VF2BOOST_OBS_PROM_EXPORT_H_
