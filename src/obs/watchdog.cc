#include "obs/watchdog.h"

#include "common/logging.h"
#include "obs/profiler.h"

namespace vf2boost {
namespace obs {

void StallWatchdog::Start(Options options) {
  if (thread_.joinable() || options.live == nullptr) return;
  options_ = std::move(options);
  if (options_.registry != nullptr) {
    g_seconds_ = options_.registry->GetGauge(
        options_.metric_prefix + "/watchdog/seconds_since_progress", "s");
    c_stalls_ = options_.registry->GetCounter(options_.metric_prefix +
                                              "/watchdog/stalls");
    const std::string os = options_.metric_prefix + "/os/";
    g_rss_ = options_.registry->GetGauge(os + "rss_bytes", "B");
    g_peak_rss_ = options_.registry->GetGauge(os + "peak_rss_bytes", "B");
    g_cpu_user_ = options_.registry->GetGauge(os + "cpu_seconds/user", "s");
    g_cpu_sys_ = options_.registry->GetGauge(os + "cpu_seconds/sys", "s");
    g_heap_ = options_.registry->GetGauge(os + "heap_allocated_bytes", "B");
  }
  stop_requested_ = false;
  thread_ = std::thread([this] { Watch(); });
}

void StallWatchdog::Stop() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_requested_ = true;
  }
  cv_.notify_all();
  if (thread_.joinable()) thread_.join();
}

void StallWatchdog::Watch() {
  using Clock = std::chrono::steady_clock;
  const LiveStatus& live = *options_.live;
  auto last_progress = Clock::now();
  // Whether this thread has already declared the current stall episode. The
  // stalled_ atomic mirrors it for readers, but is published only *after*
  // the episode bookkeeping (phase, counter, on_stall) so an observer that
  // sees stalled() == true also sees the callback's side effects.
  bool episode = false;
  // Position sampled last tick; any component changing counts as progress.
  LiveStatus::State prev_state = live.state();
  int64_t prev_tree = live.tree();
  int64_t prev_layer = live.layer();
  const char* prev_phase = live.phase();
  const auto poll = std::chrono::duration<double>(
      options_.poll_interval_seconds > 0 ? options_.poll_interval_seconds
                                         : 0.25);
  std::unique_lock<std::mutex> lock(mu_);
  while (!stop_requested_) {
    cv_.wait_for(lock, poll, [this] { return stop_requested_; });
    if (stop_requested_) break;
    if (g_rss_ != nullptr) {
      // Resource accountant: one /proc + getrusage sample per tick keeps
      // memory/CPU trending on /metrics even when the profiler is off.
      const ResourceUsage u = SampleResourceUsage();
      g_rss_->Set(static_cast<double>(u.rss_bytes));
      g_peak_rss_->Set(static_cast<double>(u.peak_rss_bytes));
      g_cpu_user_->Set(u.cpu_user_seconds);
      g_cpu_sys_->Set(u.cpu_sys_seconds);
      g_heap_->Set(static_cast<double>(u.heap_allocated_bytes));
    }
    const LiveStatus::State state = live.state();
    const int64_t tree = live.tree();
    const int64_t layer = live.layer();
    const char* phase = live.phase();
    const bool moved = state != prev_state || tree != prev_tree ||
                       layer != prev_layer || phase != prev_phase;
    prev_state = state;
    prev_tree = tree;
    prev_layer = layer;
    prev_phase = phase;
    const bool active = state == LiveStatus::State::kTraining ||
                        state == LiveStatus::State::kReconnecting;
    const auto now = Clock::now();
    if (moved || !active) {
      last_progress = now;
      if (episode) {
        episode = false;
        stalled_.store(false, std::memory_order_release);
        VF2_LOG(Info) << "watchdog: progress resumed";
      }
      seconds_since_progress_.store(0, std::memory_order_relaxed);
      if (g_seconds_ != nullptr) g_seconds_->Set(0);
      continue;
    }
    const double idle =
        std::chrono::duration<double>(now - last_progress).count();
    seconds_since_progress_.store(idle, std::memory_order_relaxed);
    if (g_seconds_ != nullptr) g_seconds_->Set(idle);
    if (options_.budget_seconds > 0 && idle > options_.budget_seconds &&
        !episode) {
      episode = true;
      stalled_phase_.store(phase, std::memory_order_relaxed);
      if (c_stalls_ != nullptr) c_stalls_->Add();
      VF2_LOG(Warn) << "watchdog: no progress for " << idle
                    << "s (budget " << options_.budget_seconds
                    << "s), state=" << LiveStatus::StateName(state)
                    << " tree=" << tree << " layer=" << layer << " phase=\""
                    << (phase == nullptr ? "" : phase) << "\"";
      if (options_.on_stall) {
        lock.unlock();
        options_.on_stall();
        lock.lock();
      }
      stalled_.store(true, std::memory_order_release);
    }
  }
}

}  // namespace obs
}  // namespace vf2boost
