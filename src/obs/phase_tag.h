#ifndef VF2BOOST_OBS_PHASE_TAG_H_
#define VF2BOOST_OBS_PHASE_TAG_H_

#include <cstdint>

namespace vf2boost {
namespace obs {

/// \brief Async-signal-readable thread-local tag naming what the calling
/// thread is doing right now: which party it works for, which protocol
/// phase it is inside, and which tree.
///
/// The sampling profiler (obs/profiler.h) reads this from the SIGPROF
/// handler running ON the tagged thread, so the layout is deliberately a
/// trivially-copyable POD with no pointers to heap memory: `party` is an
/// inline char buffer and `phase` must be a string literal (or otherwise
/// immortal storage) so the handler can copy the pointer without touching
/// the allocator. The thread-local itself is constant-initialized (no
/// dynamic TLS construction on first access from a signal handler).
struct PhaseTag {
  /// Normalized party name ("party_b", "party_a0", ...); empty = unknown.
  char party[24];
  /// Phase name; MUST be a string literal. nullptr = unknown.
  const char* phase;
  /// Tree index the phase belongs to; -1 = unknown.
  int32_t tree;
};

/// Pointer to the calling thread's tag; always valid, zero-initialized.
PhaseTag* MutablePhaseTag();

/// Copy of the calling thread's tag (normal-code convenience; the signal
/// handler reads the thread-local directly).
PhaseTag CurrentPhaseTag();

/// Sets the party component of the calling thread's tag, normalizing the
/// human-readable engine names used by ThreadPartyScope: "party B" ->
/// "party_b", "party A0" -> "party_a0"; general strings are lowercased with
/// spaces mapped to '_'. Pass "" (or nullptr) to clear. Returns nothing a
/// caller needs; safe with the profiler both on and off.
void SetThreadPartyTag(const char* party_name);

/// RAII phase push for the calling thread: sets `phase` (a string literal)
/// and `tree`, restoring the previous pair on destruction, so nested phases
/// (e.g. a comm_wait inside a build span) unwind correctly.
class ScopedPhaseTag {
 public:
  explicit ScopedPhaseTag(const char* phase, int32_t tree = -1);
  ~ScopedPhaseTag();

  ScopedPhaseTag(const ScopedPhaseTag&) = delete;
  ScopedPhaseTag& operator=(const ScopedPhaseTag&) = delete;

 private:
  const char* prev_phase_;
  int32_t prev_tree_;
};

}  // namespace obs
}  // namespace vf2boost

#endif  // VF2BOOST_OBS_PHASE_TAG_H_
