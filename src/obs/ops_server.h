#ifndef VF2BOOST_OBS_OPS_SERVER_H_
#define VF2BOOST_OBS_OPS_SERVER_H_

#include <atomic>
#include <memory>
#include <string>
#include <thread>

#include "common/result.h"
#include "common/status.h"

namespace vf2boost {
namespace obs {

class LiveStatus;
class MetricsRegistry;
class RemoteMetrics;
class StallWatchdog;

/// What one party's ops server exposes. All pointers are borrowed and must
/// outlive the server; null pointers degrade the corresponding endpoint
/// gracefully (e.g. no registry -> empty /metrics).
struct OpsServerOptions {
  int port = 0;  ///< 0 = pick an ephemeral port (tests); read back via port()
  /// IPv4 address to bind. The loopback default keeps the unauthenticated
  /// endpoints host-local; multi-process deployments that want remote
  /// scraping opt in explicitly (e.g. "0.0.0.0").
  std::string bind_address = "127.0.0.1";
  std::string party_label;    ///< "B", "A0", ... (shown on /healthz, /statusz)
  std::string metric_prefix;  ///< registry filter, "" = everything
  const MetricsRegistry* registry = nullptr;
  const RemoteMetrics* remote = nullptr;  ///< merged cluster view (Party B)
  const LiveStatus* live = nullptr;
  /// When set, /healthz degrades to 503 while the watchdog reports a stall
  /// (peer wedged past the budget) even though the engine state is still
  /// kTraining — load balancers and drills see the hang before it becomes
  /// a hard failure.
  const StallWatchdog* watchdog = nullptr;
};

/// \brief Minimal dependency-free HTTP/1.1 introspection server.
///
/// One acceptor thread on a loopback socket, one request per connection,
/// `Connection: close`. Serves:
///   /healthz  liveness + session state (503 once the engine reports failed)
///   /metrics  Prometheus text exposition (histogram buckets included)
///   /statusz  human-readable training progress (incl. pool utilization)
///   /tracez   most recent completed spans from the installed TraceRecorder
///   /pprof/profile?seconds=N  folded-stack CPU profile over an N-second
///             window (delta of a running profiler, else a temporary one);
///             blocks this server's single serving thread for the window
///   /pprof/heap  point-in-time RSS/allocator summary
///
/// Binds 127.0.0.1 unless options.bind_address says otherwise: the endpoints
/// are unauthenticated, so exposure beyond the host is an operator decision
/// (--ops-bind 0.0.0.0, ssh tunnel, sidecar proxy).
/// Serving reads only atomics and mutex-guarded snapshots — it never blocks
/// the training path.
class OpsServer {
 public:
  static Result<std::unique_ptr<OpsServer>> Start(
      const OpsServerOptions& options);
  ~OpsServer();

  OpsServer(const OpsServer&) = delete;
  OpsServer& operator=(const OpsServer&) = delete;

  /// Bound port (resolves option port 0 to the kernel-assigned one).
  int port() const { return port_; }

  /// Stops accepting and joins the serving thread. Idempotent.
  void Stop();

 private:
  explicit OpsServer(const OpsServerOptions& options) : options_(options) {}

  void Serve();
  /// Full HTTP response for `path` (+ raw query string, no leading '?').
  std::string HandlePath(const std::string& path,
                         const std::string& query) const;

  OpsServerOptions options_;
  int listen_fd_ = -1;
  int port_ = 0;
  std::atomic<bool> stop_{false};
  std::thread thread_;
};

}  // namespace obs
}  // namespace vf2boost

#endif  // VF2BOOST_OBS_OPS_SERVER_H_
