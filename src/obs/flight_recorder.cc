#include "obs/flight_recorder.h"

#include <fcntl.h>
#include <unistd.h>

#include <cstdio>
#include <cstring>

#include "common/logging.h"
#include "obs/trace.h"

namespace vf2boost {
namespace obs {

std::atomic<FlightRecorder*> FlightRecorder::g_current{nullptr};

const char* FlightRecorder::KindName(Kind kind) {
  switch (kind) {
    case Kind::kFrameSent:
      return "frame_sent";
    case Kind::kFrameReceived:
      return "frame_received";
    case Kind::kPhase:
      return "phase";
    case Kind::kTreeBoundary:
      return "tree_boundary";
    case Kind::kReconnect:
      return "reconnect";
    case Kind::kStateChange:
      return "state_change";
    case Kind::kWatchdog:
      return "watchdog";
    case Kind::kNote:
      return "note";
    case Kind::kLiveness:
      return "liveness";
  }
  return "unknown";
}

FlightRecorder::FlightRecorder() = default;

FlightRecorder::~FlightRecorder() {
  FlightRecorder* expected = this;
  g_current.compare_exchange_strong(expected, nullptr,
                                    std::memory_order_acq_rel);
}

void FlightRecorder::Install() {
  g_current.store(this, std::memory_order_release);
}

void FlightRecorder::Uninstall() {
  g_current.store(nullptr, std::memory_order_release);
}

void FlightRecorder::Record(Kind kind, uint32_t code, int64_t a, int64_t b,
                            const char* detail) {
  const uint64_t idx = cursor_.fetch_add(1, std::memory_order_relaxed);
  Slot& slot = ring_[idx % kCapacity];
  // Odd sequence marks the slot torn; readers that observe it (or a
  // mismatched pair around their copy) drop the entry.
  slot.seq.store(2 * idx + 1, std::memory_order_release);
  Entry& e = slot.entry;
  e.ts_us = TraceNowMicros();
  e.pid = CurrentTraceThreadPid();
  e.kind = kind;
  e.code = code;
  e.a = a;
  e.b = b;
  if (detail == nullptr) {
    e.detail[0] = '\0';
  } else {
    std::strncpy(e.detail, detail, kDetailBytes - 1);
    e.detail[kDetailBytes - 1] = '\0';
  }
  slot.seq.store(2 * idx + 2, std::memory_order_release);
  // Coarse progress boundaries double as persistence points: a later
  // SIGKILL then costs at most the events since the last boundary.
  if (!persist_path_.empty() &&
      (kind == Kind::kTreeBoundary || kind == Kind::kReconnect ||
       kind == Kind::kWatchdog || kind == Kind::kLiveness)) {
    Persist();
  }
}

void FlightRecorder::RecordEvent(Kind kind, uint32_t code, int64_t a,
                                 int64_t b, const char* detail) {
  if (FlightRecorder* fr = Current(); fr != nullptr) {
    fr->Record(kind, code, a, b, detail);
  }
}

void FlightRecorder::SetPersistPath(const std::string& path) {
  persist_path_ = path;
}

std::vector<FlightRecorder::Entry> FlightRecorder::Snapshot() const {
  const uint64_t end = cursor_.load(std::memory_order_acquire);
  const uint64_t count = end < kCapacity ? end : kCapacity;
  std::vector<Entry> out;
  out.reserve(count);
  for (uint64_t idx = end - count; idx < end; ++idx) {
    const Slot& slot = ring_[idx % kCapacity];
    const uint64_t before = slot.seq.load(std::memory_order_acquire);
    if (before != 2 * idx + 2) continue;  // torn or already overwritten
    Entry copy = slot.entry;
    const uint64_t after = slot.seq.load(std::memory_order_acquire);
    if (after != before) continue;
    out.push_back(copy);
  }
  return out;
}

namespace {

void AppendEscaped(std::string* out, const char* s) {
  for (; *s != '\0'; ++s) {
    if (*s == '"' || *s == '\\') *out += '\\';
    *out += *s;
  }
}

}  // namespace

std::string FlightRecorder::ToJson() const {
  const std::vector<Entry> events = Snapshot();
  const char* last_phase = "";
  const char* last_frame = "";
  for (const Entry& e : events) {
    if (e.kind == Kind::kPhase) last_phase = e.detail;
    if (e.kind == Kind::kFrameSent || e.kind == Kind::kFrameReceived) {
      last_frame = e.detail;
    }
  }
  std::string out = "{\"flightRecorder\":{";
  char buf[192];
  std::snprintf(buf, sizeof(buf), "\"events_recorded\":%llu,",
                static_cast<unsigned long long>(
                    cursor_.load(std::memory_order_relaxed)));
  out += buf;
  out += "\"last_phase\":\"";
  AppendEscaped(&out, last_phase);
  out += "\",\"last_frame\":\"";
  AppendEscaped(&out, last_frame);
  out += "\",\"events\":[\n";
  bool first = true;
  for (const Entry& e : events) {
    std::snprintf(buf, sizeof(buf),
                  "%s{\"ts_us\":%lld,\"pid\":%u,\"kind\":\"%s\","
                  "\"code\":%u,\"a\":%lld,\"b\":%lld,\"detail\":\"",
                  first ? "" : ",\n", static_cast<long long>(e.ts_us), e.pid,
                  KindName(e.kind), e.code, static_cast<long long>(e.a),
                  static_cast<long long>(e.b));
    out += buf;
    AppendEscaped(&out, e.detail);
    out += "\"}";
    first = false;
  }
  out += "\n]}}\n";
  return out;
}

bool FlightRecorder::Dump(const std::string& path) const {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    VF2_LOG(Error) << "cannot open " << path << " for flight-recorder dump";
    return false;
  }
  const std::string json = ToJson();
  const bool ok = std::fwrite(json.data(), 1, json.size(), f) == json.size();
  std::fclose(f);
  if (!ok) VF2_LOG(Error) << "short flight-recorder write to " << path;
  return ok;
}

void FlightRecorder::Persist() const {
  if (!persist_path_.empty()) Dump(persist_path_);
}

namespace {

// Async-signal-safe helpers for SignalDump: no allocation, no locale, no
// locks — just byte pushing into a caller-owned buffer.
size_t SigAppendStr(char* buf, size_t pos, size_t cap, const char* s) {
  for (; *s != '\0' && pos + 1 < cap; ++s) {
    const unsigned char c = static_cast<unsigned char>(*s);
    if (c == '"' || c == '\\' || c < 0x20) {
      buf[pos++] = '?';
    } else {
      buf[pos++] = *s;
    }
  }
  return pos;
}

size_t SigAppendInt(char* buf, size_t pos, size_t cap, long long v) {
  char digits[24];
  size_t n = 0;
  unsigned long long u =
      v < 0 ? static_cast<unsigned long long>(-(v + 1)) + 1
            : static_cast<unsigned long long>(v);
  do {
    digits[n++] = static_cast<char>('0' + u % 10);
    u /= 10;
  } while (u != 0 && n < sizeof(digits));
  if (v < 0 && pos + 1 < cap) buf[pos++] = '-';
  while (n > 0 && pos + 1 < cap) buf[pos++] = digits[--n];
  return pos;
}

size_t SigAppendLit(char* buf, size_t pos, size_t cap, const char* s) {
  for (; *s != '\0' && pos + 1 < cap; ++s) buf[pos++] = *s;
  return pos;
}

}  // namespace

void FlightRecorder::SignalDump() const {
  if (persist_path_.empty()) return;
  const int fd =
      ::open(persist_path_.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
  if (fd < 0) return;
  // One entry per write(2): bounded stack usage, and a partially written
  // file still parses up to the last complete write in most cases — the
  // closing brackets go out last.
  // No Snapshot() here: it allocates. Read the ring in place instead —
  // atomics, stack buffers, and write(2) only.
  char buf[512];
  size_t pos = 0;
  const uint64_t end = cursor_.load(std::memory_order_acquire);
  const uint64_t count = end < kCapacity ? end : kCapacity;
  const char* last_phase = "";
  const char* last_frame = "";
  for (uint64_t idx = end - count; idx < end; ++idx) {
    const Slot& slot = ring_[idx % kCapacity];
    if (slot.seq.load(std::memory_order_acquire) != 2 * idx + 2) continue;
    const Entry& e = slot.entry;
    if (e.kind == Kind::kPhase) last_phase = e.detail;
    if (e.kind == Kind::kFrameSent || e.kind == Kind::kFrameReceived) {
      last_frame = e.detail;
    }
  }
  pos = SigAppendLit(buf, pos, sizeof(buf),
                     "{\"flightRecorder\":{\"events_recorded\":");
  pos = SigAppendInt(buf, pos, sizeof(buf), static_cast<long long>(end));
  pos = SigAppendLit(buf, pos, sizeof(buf), ",\"last_phase\":\"");
  pos = SigAppendStr(buf, pos, sizeof(buf), last_phase);
  pos = SigAppendLit(buf, pos, sizeof(buf), "\",\"last_frame\":\"");
  pos = SigAppendStr(buf, pos, sizeof(buf), last_frame);
  pos = SigAppendLit(buf, pos, sizeof(buf), "\",\"events\":[\n");
  (void)!::write(fd, buf, pos);
  bool first = true;
  for (uint64_t idx = end - count; idx < end; ++idx) {
    const Slot& slot = ring_[idx % kCapacity];
    if (slot.seq.load(std::memory_order_acquire) != 2 * idx + 2) continue;
    const Entry& e = slot.entry;
    pos = 0;
    if (!first) pos = SigAppendLit(buf, pos, sizeof(buf), ",\n");
    first = false;
    pos = SigAppendLit(buf, pos, sizeof(buf), "{\"ts_us\":");
    pos = SigAppendInt(buf, pos, sizeof(buf), e.ts_us);
    pos = SigAppendLit(buf, pos, sizeof(buf), ",\"pid\":");
    pos = SigAppendInt(buf, pos, sizeof(buf), e.pid);
    pos = SigAppendLit(buf, pos, sizeof(buf), ",\"kind\":\"");
    pos = SigAppendStr(buf, pos, sizeof(buf), KindName(e.kind));
    pos = SigAppendLit(buf, pos, sizeof(buf), "\",\"code\":");
    pos = SigAppendInt(buf, pos, sizeof(buf), e.code);
    pos = SigAppendLit(buf, pos, sizeof(buf), ",\"a\":");
    pos = SigAppendInt(buf, pos, sizeof(buf), e.a);
    pos = SigAppendLit(buf, pos, sizeof(buf), ",\"b\":");
    pos = SigAppendInt(buf, pos, sizeof(buf), e.b);
    pos = SigAppendLit(buf, pos, sizeof(buf), ",\"detail\":\"");
    pos = SigAppendStr(buf, pos, sizeof(buf), e.detail);
    pos = SigAppendLit(buf, pos, sizeof(buf), "\"}");
    (void)!::write(fd, buf, pos);
  }
  pos = 0;
  pos = SigAppendLit(buf, pos, sizeof(buf), "\n]}}\n");
  (void)!::write(fd, buf, pos);
  ::close(fd);
}

}  // namespace obs
}  // namespace vf2boost
