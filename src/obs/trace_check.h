#ifndef VF2BOOST_OBS_TRACE_CHECK_H_
#define VF2BOOST_OBS_TRACE_CHECK_H_

#include <map>
#include <memory>
#include <string>
#include <vector>

namespace vf2boost {
namespace obs {

/// \brief Minimal JSON value tree — just enough to validate the files this
/// subsystem emits (and keep CI free of external JSON dependencies).
struct JsonValue {
  enum class Type { kNull, kBool, kNumber, kString, kArray, kObject };
  Type type = Type::kNull;
  bool boolean = false;
  double number = 0;
  std::string string;
  std::vector<JsonValue> array;
  std::map<std::string, JsonValue> object;

  bool is_object() const { return type == Type::kObject; }
  bool is_array() const { return type == Type::kArray; }
  bool is_number() const { return type == Type::kNumber; }
  bool is_string() const { return type == Type::kString; }
  /// Object member or nullptr.
  const JsonValue* Get(const std::string& key) const;
};

/// Parses strict JSON. Returns false and sets *error on malformed input.
bool ParseJson(const std::string& text, JsonValue* out, std::string* error);

/// Summary of a validated trace (for tools that want to report coverage).
struct TraceSummary {
  size_t events = 0;
  size_t complete_spans = 0;
  size_t flow_starts = 0;
  size_t flow_ends = 0;
  size_t counters = 0;
  std::map<std::string, size_t> span_counts;  ///< per span name
};

/// Validates Chrome trace-event JSON as emitted by TraceRecorder:
///  - top-level object with a `traceEvents` array,
///  - every event has ph/ts/pid/tid (and dur for "X", id for "s"/"f"),
///  - any "B"/"E" duration events balance per (pid, tid),
///  - every flow finish ("f") has a matching start ("s") with the same id.
/// Returns false and sets *error on the first violation.
bool ValidateTraceJson(const std::string& text, std::string* error,
                       TraceSummary* summary = nullptr);

/// Validates flat metrics JSON ({"benchmarks": [{name, value, unit}...]}).
/// On success, *names (when non-null) receives every metric name.
bool ValidateMetricsJson(const std::string& text, std::string* error,
                         std::vector<std::string>* names = nullptr);

/// Cross-process flow accounting from AuditTraceFlows.
struct FlowAudit {
  size_t matched = 0;            ///< flows with both an 's' and an 'f'
  size_t unmatched_starts = 0;   ///< 's' with no 'f' (message never landed)
  size_t unmatched_ends = 0;     ///< 'f' with no 's' (fabricated delivery)
  size_t causality_violations = 0;  ///< receive before send beyond slack
};

/// Strict flow audit for a MERGED multi-process trace: every wire frame's
/// send ('s') and receive ('f') must pair by trace id, and after clock-offset
/// correction no receive may precede its send by more than `slack_us`
/// (the residual clock-alignment uncertainty the caller tolerates).
///
/// `require_matched_names`: substrings (e.g. "GradBatch") that must not
/// appear in the name of any UNMATCHED flow event — a dangling
/// "snd kGradBatch" means a training-path message was lost between traces.
/// Unmatched flows with other names (clock probes cut off at shutdown, the
/// final kTrainDone racing process exit) are tallied but tolerated.
///
/// Returns false and sets *error on the first violation; *audit (when
/// non-null) is filled either way.
bool AuditTraceFlows(const std::string& text, int64_t slack_us,
                     const std::vector<std::string>& require_matched_names,
                     std::string* error, FlowAudit* audit = nullptr);

}  // namespace obs
}  // namespace vf2boost

#endif  // VF2BOOST_OBS_TRACE_CHECK_H_
