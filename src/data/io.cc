#include "data/io.h"

#include <cstdlib>
#include <fstream>
#include <sstream>

namespace vf2boost {

namespace {

Result<std::string> ReadFile(const std::string& path) {
  std::ifstream in(path);
  if (!in) return Status::IOError("cannot open " + path);
  std::ostringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

bool ParseFloat(const std::string& s, float* out) {
  char* end = nullptr;
  *out = std::strtof(s.c_str(), &end);
  return end != nullptr && *end == '\0' && end != s.c_str();
}

}  // namespace

Result<Dataset> ParseLibsvm(const std::string& text) {
  std::vector<std::vector<Entry>> rows;
  std::vector<float> labels;
  uint32_t max_col = 0;
  std::istringstream lines(text);
  std::string line;
  size_t lineno = 0;
  while (std::getline(lines, line)) {
    ++lineno;
    if (line.empty() || line[0] == '#') continue;
    std::istringstream tokens(line);
    std::string tok;
    if (!(tokens >> tok)) continue;
    float label;
    if (!ParseFloat(tok, &label)) {
      return Status::Corruption("bad label at line " + std::to_string(lineno));
    }
    std::vector<Entry> row;
    while (tokens >> tok) {
      const size_t colon = tok.find(':');
      if (colon == std::string::npos) {
        return Status::Corruption("bad entry '" + tok + "' at line " +
                                  std::to_string(lineno));
      }
      char* end = nullptr;
      const long idx = std::strtol(tok.substr(0, colon).c_str(), &end, 10);
      float value;
      if (idx < 0 || !ParseFloat(tok.substr(colon + 1), &value)) {
        return Status::Corruption("bad entry '" + tok + "' at line " +
                                  std::to_string(lineno));
      }
      const uint32_t col = static_cast<uint32_t>(idx);
      max_col = std::max(max_col, col);
      if (value != 0.0f) row.push_back({col, value});
    }
    rows.push_back(std::move(row));
    labels.push_back(label);
  }
  Dataset out;
  auto m = CsrMatrix::FromRows(rows, rows.empty() ? 0 : max_col + 1);
  VF2_RETURN_IF_ERROR(m.status());
  out.features = std::move(m).value();
  out.labels = std::move(labels);
  return out;
}

Result<Dataset> LoadLibsvm(const std::string& path) {
  auto text = ReadFile(path);
  VF2_RETURN_IF_ERROR(text.status());
  return ParseLibsvm(text.value());
}

Status SaveLibsvm(const Dataset& data, const std::string& path) {
  std::ofstream out(path);
  if (!out) return Status::IOError("cannot open " + path + " for writing");
  for (size_t r = 0; r < data.rows(); ++r) {
    out << (data.has_labels() ? data.labels[r] : 0.0f);
    const auto cols = data.features.RowColumns(r);
    const auto vals = data.features.RowValues(r);
    for (size_t k = 0; k < cols.size(); ++k) {
      out << ' ' << cols[k] << ':' << vals[k];
    }
    out << '\n';
  }
  return out.good() ? Status::OK() : Status::IOError("write failed: " + path);
}

Result<Dataset> ParseCsv(const std::string& text,
                         const std::string& label_column) {
  std::istringstream lines(text);
  std::string line;
  if (!std::getline(lines, line)) return Status::Corruption("empty CSV");

  // Header.
  std::vector<std::string> header;
  {
    std::istringstream cells(line);
    std::string cell;
    while (std::getline(cells, cell, ',')) header.push_back(cell);
  }
  int label_idx = -1;
  for (size_t i = 0; i < header.size(); ++i) {
    if (header[i] == label_column) label_idx = static_cast<int>(i);
  }
  if (label_idx < 0) {
    return Status::NotFound("label column '" + label_column + "' not in CSV");
  }

  std::vector<std::vector<Entry>> rows;
  std::vector<float> labels;
  size_t lineno = 1;
  while (std::getline(lines, line)) {
    ++lineno;
    if (line.empty()) continue;
    std::istringstream cells(line);
    std::string cell;
    std::vector<Entry> row;
    uint32_t feature = 0;
    size_t col = 0;
    float label = 0;
    while (std::getline(cells, cell, ',')) {
      float v;
      if (!ParseFloat(cell, &v)) {
        return Status::Corruption("bad cell '" + cell + "' at line " +
                                  std::to_string(lineno));
      }
      if (static_cast<int>(col) == label_idx) {
        label = v;
      } else {
        if (v != 0.0f) row.push_back({feature, v});
        ++feature;
      }
      ++col;
    }
    if (col != header.size()) {
      return Status::Corruption("wrong cell count at line " +
                                std::to_string(lineno));
    }
    rows.push_back(std::move(row));
    labels.push_back(label);
  }
  Dataset out;
  auto m = CsrMatrix::FromRows(rows, header.size() - 1);
  VF2_RETURN_IF_ERROR(m.status());
  out.features = std::move(m).value();
  out.labels = std::move(labels);
  return out;
}

Result<Dataset> LoadCsv(const std::string& path,
                        const std::string& label_column) {
  auto text = ReadFile(path);
  VF2_RETURN_IF_ERROR(text.status());
  return ParseCsv(text.value(), label_column);
}

}  // namespace vf2boost
