#ifndef VF2BOOST_DATA_QUANTILE_H_
#define VF2BOOST_DATA_QUANTILE_H_

#include <cstddef>
#include <vector>

#include "common/random.h"

namespace vf2boost {

/// \brief Bounded-memory quantile estimator used to propose histogram split
/// candidates (paper §2.1: "candidate splits are proposed for each feature,
/// e.g. using the percentiles of each feature column").
///
/// Implementation: reservoir sampling of up to `capacity` values, exact
/// quantiles of the reservoir. For capacity k the quantile rank error is
/// O(1/sqrt(k)) — with the default 16Ki reservoir and s = 20 bins that is
/// far below one bin width, matching the approximate sketches (GK, KLL) the
/// GBDT literature uses without their complexity.
class QuantileSketch {
 public:
  explicit QuantileSketch(size_t capacity = 16384, uint64_t seed = 99);

  void Add(float v);
  size_t count() const { return count_; }

  /// Returns ascending, deduplicated cut points that split the observed
  /// distribution into at most `bins` quantile bins (at most bins-1 cuts).
  std::vector<float> GetCuts(size_t bins) const;

 private:
  size_t capacity_;
  size_t count_ = 0;
  std::vector<float> reservoir_;
  Rng rng_;
};

}  // namespace vf2boost

#endif  // VF2BOOST_DATA_QUANTILE_H_
