#ifndef VF2BOOST_DATA_PSI_H_
#define VF2BOOST_DATA_PSI_H_

#include <cstddef>
#include <cstdint>
#include <vector>

namespace vf2boost {

/// Row alignment produced by set intersection: indices_a[k] and indices_b[k]
/// refer to the same logical instance in the two parties' local row order.
struct PsiResult {
  std::vector<size_t> indices_a;
  std::vector<size_t> indices_b;

  size_t size() const { return indices_a.size(); }
};

/// \brief Simulated private set intersection over instance ids.
///
/// The paper preprocesses its datasets with a real PSI protocol ([13, 18,
/// 24, 51]) before training; cryptographic PSI is out of scope here (the
/// training system never depends on *how* the intersection was computed), so
/// this stand-in reproduces the observable behaviour: both parties learn the
/// intersection — and only the intersection — in a canonical order. The
/// salted 64-bit mixing mimics the blinded-digest exchange of hash-based
/// PSI protocols.
PsiResult SimulatedPsi(const std::vector<uint64_t>& ids_a,
                       const std::vector<uint64_t>& ids_b, uint64_t salt);

}  // namespace vf2boost

#endif  // VF2BOOST_DATA_PSI_H_
