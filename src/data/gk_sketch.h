#ifndef VF2BOOST_DATA_GK_SKETCH_H_
#define VF2BOOST_DATA_GK_SKETCH_H_

#include <cstddef>
#include <vector>

namespace vf2boost {

/// \brief Greenwald-Khanna streaming quantile summary (SIGMOD'01), the
/// deterministic alternative to the sampling-based QuantileSketch.
///
/// Guarantees every rank query is within epsilon*n of exact using
/// O((1/epsilon) * log(epsilon*n)) space. This is the sketch family the
/// GBDT literature the paper builds on uses for split proposal ([33] in the
/// paper's references is exactly this algorithm).
class GkSketch {
 public:
  /// epsilon is the worst-case rank error fraction (default 0.5% — far
  /// below one histogram bin at the paper's s = 20).
  explicit GkSketch(double epsilon = 0.005);

  void Add(float v);

  size_t count() const { return count_; }
  /// Current summary size (tuples retained).
  size_t SummarySize() const { return tuples_.size(); }

  /// Value whose rank is within epsilon*n of q*n. q in [0, 1].
  /// Undefined on an empty sketch (returns 0).
  float Quantile(double q) const;

  /// Ascending, deduplicated cut points at quantiles k/bins, k=1..bins-1.
  std::vector<float> GetCuts(size_t bins) const;

 private:
  struct Tuple {
    float value;
    size_t g;      ///< r_min(i) - r_min(i-1)
    size_t delta;  ///< r_max(i) - r_min(i)
  };

  void Compress();

  double epsilon_;
  size_t count_ = 0;
  size_t inserts_since_compress_ = 0;
  std::vector<Tuple> tuples_;  // ascending by value
};

}  // namespace vf2boost

#endif  // VF2BOOST_DATA_GK_SKETCH_H_
