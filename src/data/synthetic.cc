#include "data/synthetic.h"

#include <algorithm>
#include <cmath>
#include <unordered_set>

#include "common/logging.h"

namespace vf2boost {

Dataset GenerateSynthetic(const SyntheticSpec& spec) {
  VF2_CHECK(spec.density > 0.0 && spec.density <= 1.0);
  Rng rng(spec.seed);

  // Hidden teacher weights, one per feature.
  std::vector<double> teacher(spec.cols);
  for (double& w : teacher) w = rng.NextGaussian();

  const size_t nnz_per_row = std::max<size_t>(
      1, static_cast<size_t>(spec.density * static_cast<double>(spec.cols)));

  std::vector<std::vector<Entry>> rows(spec.rows);
  std::vector<float> labels(spec.rows);
  std::unordered_set<uint32_t> seen;
  for (size_t r = 0; r < spec.rows; ++r) {
    auto& row = rows[r];
    row.reserve(nnz_per_row);
    double score = 0;
    if (nnz_per_row == spec.cols) {
      for (uint32_t c = 0; c < spec.cols; ++c) {
        const float v = static_cast<float>(rng.NextGaussian());
        row.push_back({c, v});
        score += teacher[c] * v;
      }
    } else {
      seen.clear();
      while (seen.size() < nnz_per_row) {
        const uint32_t c =
            static_cast<uint32_t>(rng.NextBounded(spec.cols));
        if (!seen.insert(c).second) continue;
        const float v = static_cast<float>(rng.NextGaussian());
        row.push_back({c, v});
        score += teacher[c] * v;
      }
    }
    score *= spec.signal_strength / std::sqrt(static_cast<double>(nnz_per_row));
    const double p = 1.0 / (1.0 + std::exp(-score));
    labels[r] = rng.NextDouble() < p ? 1.0f : 0.0f;
  }

  Dataset out;
  auto m = CsrMatrix::FromRows(rows, spec.cols);
  VF2_CHECK(m.ok()) << m.status().ToString();
  out.features = std::move(m).value();
  out.labels = std::move(labels);
  return out;
}

Result<SyntheticSpec> PaperDatasetSpec(const std::string& name, double scale) {
  // (rows, cols, density) straight from Table 3; cols are D_A + D_B.
  struct Shape {
    const char* name;
    size_t rows;
    size_t cols;
    double density;
  };
  static constexpr Shape kShapes[] = {
      {"census", 22000, 148, 0.0878},   {"a9a", 32000, 123, 0.1128},
      {"susy", 5000000, 18, 1.0},       {"epsilon", 400000, 2000, 1.0},
      {"rcv1", 697000, 46000, 0.0015},  {"synthesis", 10000000, 50000, 0.002},
      {"industry", 55000000, 100000, 0.0003}};
  for (const Shape& s : kShapes) {
    if (name != s.name) continue;
    SyntheticSpec spec;
    spec.name = name;
    spec.rows = std::max<size_t>(200, static_cast<size_t>(s.rows * scale));
    spec.cols = std::max<size_t>(
        8, static_cast<size_t>(static_cast<double>(s.cols) *
                               std::sqrt(std::min(1.0, scale))));
    // Keep at least one expected nonzero per row.
    spec.density =
        std::max(s.density, 1.0 / static_cast<double>(spec.cols));
    spec.seed = 7 + static_cast<uint64_t>(name[0]);
    return spec;
  }
  return Status::NotFound("unknown paper dataset: " + name);
}

}  // namespace vf2boost
