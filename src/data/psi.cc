#include "data/psi.h"

#include <algorithm>
#include <unordered_map>

namespace vf2boost {

namespace {

// SplitMix64-style salted mixer standing in for the blinded digest.
uint64_t SaltedDigest(uint64_t id, uint64_t salt) {
  uint64_t z = id + salt + 0x9e3779b97f4a7c15ULL;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

}  // namespace

PsiResult SimulatedPsi(const std::vector<uint64_t>& ids_a,
                       const std::vector<uint64_t>& ids_b, uint64_t salt) {
  std::unordered_map<uint64_t, size_t> digests_a;
  digests_a.reserve(ids_a.size());
  for (size_t i = 0; i < ids_a.size(); ++i) {
    digests_a.emplace(SaltedDigest(ids_a[i], salt), i);
  }

  // Canonical order: sort matches by digest so both parties derive the same
  // alignment independently.
  std::vector<std::pair<uint64_t, std::pair<size_t, size_t>>> matches;
  for (size_t j = 0; j < ids_b.size(); ++j) {
    const uint64_t d = SaltedDigest(ids_b[j], salt);
    const auto it = digests_a.find(d);
    if (it != digests_a.end()) {
      matches.push_back({d, {it->second, j}});
    }
  }
  std::sort(matches.begin(), matches.end());

  PsiResult out;
  out.indices_a.reserve(matches.size());
  out.indices_b.reserve(matches.size());
  for (const auto& m : matches) {
    out.indices_a.push_back(m.second.first);
    out.indices_b.push_back(m.second.second);
  }
  return out;
}

}  // namespace vf2boost
