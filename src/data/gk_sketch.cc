#include "data/gk_sketch.h"

#include <algorithm>
#include <cmath>

#include "common/logging.h"

namespace vf2boost {

GkSketch::GkSketch(double epsilon) : epsilon_(epsilon) {
  VF2_CHECK(epsilon > 0 && epsilon < 0.5) << "epsilon out of range";
}

void GkSketch::Add(float v) {
  ++count_;
  // Locate the first tuple with value >= v.
  const auto it = std::lower_bound(
      tuples_.begin(), tuples_.end(), v,
      [](const Tuple& t, float value) { return t.value < value; });

  Tuple fresh;
  fresh.value = v;
  fresh.g = 1;
  if (it == tuples_.begin() || it == tuples_.end()) {
    // New minimum or maximum is exact.
    fresh.delta = 0;
  } else {
    const size_t band =
        static_cast<size_t>(std::floor(2.0 * epsilon_ * count_));
    fresh.delta = band >= 1 ? band - 1 : 0;
  }
  tuples_.insert(it, fresh);

  if (++inserts_since_compress_ >=
      static_cast<size_t>(1.0 / (2.0 * epsilon_))) {
    Compress();
    inserts_since_compress_ = 0;
  }
}

void GkSketch::Compress() {
  if (tuples_.size() < 3) return;
  const size_t threshold =
      static_cast<size_t>(std::floor(2.0 * epsilon_ * count_));
  // Right-to-left pass: absorb a tuple into its successor whenever the
  // merged uncertainty g + g' + delta' stays within 2*epsilon*n — the
  // invariant rank queries rely on. The exact minimum and maximum tuples
  // are never merged away.
  std::vector<Tuple> reversed;
  reversed.reserve(tuples_.size());
  Tuple successor = tuples_.back();
  for (size_t i = tuples_.size() - 1; i-- > 1;) {
    const Tuple& cur = tuples_[i];
    if (cur.g + successor.g + successor.delta <= threshold) {
      successor.g += cur.g;  // absorb
    } else {
      reversed.push_back(successor);
      successor = cur;
    }
  }
  reversed.push_back(successor);
  reversed.push_back(tuples_.front());
  tuples_.assign(reversed.rbegin(), reversed.rend());
}

float GkSketch::Quantile(double q) const {
  if (tuples_.empty()) return 0;
  q = std::clamp(q, 0.0, 1.0);
  const double rank = q * static_cast<double>(count_);
  const double allowed = epsilon_ * static_cast<double>(count_);
  size_t r_min = 0;
  for (size_t i = 0; i < tuples_.size(); ++i) {
    r_min += tuples_[i].g;
    const double r_max = static_cast<double>(r_min + tuples_[i].delta);
    if (r_max >= rank - allowed &&
        static_cast<double>(r_min) <= rank + allowed) {
      return tuples_[i].value;
    }
    if (static_cast<double>(r_min) > rank + allowed) {
      return tuples_[i].value;
    }
  }
  return tuples_.back().value;
}

std::vector<float> GkSketch::GetCuts(size_t bins) const {
  std::vector<float> cuts;
  if (bins <= 1 || tuples_.empty()) return cuts;
  cuts.reserve(bins - 1);
  for (size_t k = 1; k < bins; ++k) {
    const float cut = Quantile(static_cast<double>(k) / bins);
    if (cuts.empty() || cut > cuts.back()) cuts.push_back(cut);
  }
  return cuts;
}

}  // namespace vf2boost
