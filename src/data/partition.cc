#include "data/partition.h"

#include <numeric>

#include "common/logging.h"

namespace vf2boost {

VerticalSplitSpec SplitColumnsRandomly(size_t total_columns,
                                       const std::vector<double>& fractions,
                                       Rng* rng) {
  VF2_CHECK(!fractions.empty());
  const size_t parties = fractions.size();
  double total = 0;
  for (double f : fractions) {
    VF2_CHECK(f > 0) << "party fraction must be positive";
    total += f;
  }

  // Shuffle columns, then carve contiguous chunks of the shuffle.
  std::vector<uint32_t> order(total_columns);
  std::iota(order.begin(), order.end(), 0);
  for (size_t i = order.size(); i > 1; --i) {
    std::swap(order[i - 1], order[rng->NextBounded(i)]);
  }

  VerticalSplitSpec spec;
  spec.party_columns.resize(parties);
  size_t begin = 0;
  double cumulative = 0;
  for (size_t p = 0; p < parties; ++p) {
    cumulative += fractions[p];
    size_t end = p + 1 == parties
                     ? total_columns
                     : static_cast<size_t>(cumulative / total *
                                           static_cast<double>(total_columns));
    // Guarantee non-empty parties where possible.
    if (end <= begin && begin < total_columns) end = begin + 1;
    end = std::min(end, total_columns);
    spec.party_columns[p].assign(order.begin() + begin, order.begin() + end);
    begin = end;
  }
  return spec;
}

Result<std::vector<Dataset>> PartitionVertically(
    const Dataset& data, const VerticalSplitSpec& spec, size_t label_party) {
  if (label_party >= spec.num_parties()) {
    return Status::InvalidArgument("label_party out of range");
  }
  std::vector<bool> seen(data.columns(), false);
  for (const auto& cols : spec.party_columns) {
    for (uint32_t c : cols) {
      if (c >= data.columns()) {
        return Status::InvalidArgument("column " + std::to_string(c) +
                                       " out of range");
      }
      if (seen[c]) {
        return Status::InvalidArgument("column " + std::to_string(c) +
                                       " assigned to multiple parties");
      }
      seen[c] = true;
    }
  }
  std::vector<Dataset> shards;
  shards.reserve(spec.num_parties());
  for (size_t p = 0; p < spec.num_parties(); ++p) {
    Dataset shard;
    shard.features = data.features.SelectColumns(spec.party_columns[p]);
    if (p == label_party) shard.labels = data.labels;
    shards.push_back(std::move(shard));
  }
  return shards;
}

}  // namespace vf2boost
