#include "data/dataset.h"

#include <numeric>

#include "common/logging.h"

namespace vf2boost {

void TrainValidSplit(const Dataset& data, double train_fraction, Rng* rng,
                     Dataset* train, Dataset* valid) {
  VF2_CHECK(train_fraction > 0.0 && train_fraction < 1.0);
  std::vector<size_t> order(data.rows());
  std::iota(order.begin(), order.end(), 0);
  // Fisher-Yates.
  for (size_t i = order.size(); i > 1; --i) {
    std::swap(order[i - 1], order[rng->NextBounded(i)]);
  }
  const size_t n_train =
      static_cast<size_t>(train_fraction * static_cast<double>(order.size()));
  std::vector<size_t> train_rows(order.begin(), order.begin() + n_train);
  std::vector<size_t> valid_rows(order.begin() + n_train, order.end());

  train->features = data.features.SelectRows(train_rows);
  valid->features = data.features.SelectRows(valid_rows);
  train->labels.clear();
  valid->labels.clear();
  train->weights.clear();
  valid->weights.clear();
  if (data.has_labels()) {
    for (size_t r : train_rows) train->labels.push_back(data.labels[r]);
    for (size_t r : valid_rows) valid->labels.push_back(data.labels[r]);
  }
  if (data.has_weights()) {
    for (size_t r : train_rows) train->weights.push_back(data.weights[r]);
    for (size_t r : valid_rows) valid->weights.push_back(data.weights[r]);
  }
}

}  // namespace vf2boost
