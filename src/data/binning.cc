#include "data/binning.h"

#include <algorithm>

#include "common/logging.h"
#include "data/quantile.h"

namespace vf2boost {

uint32_t BinCuts::BinOf(uint32_t f, float v) const {
  const auto& c = cuts[f];
  return static_cast<uint32_t>(
      std::upper_bound(c.begin(), c.end(), v) - c.begin());
}

size_t BinCuts::TotalBins() const {
  size_t total = 0;
  for (const auto& c : cuts) total += c.size() + 1;
  return total;
}

BinCuts ComputeBinCuts(const CsrMatrix& x, size_t max_bins,
                       size_t sketch_capacity) {
  VF2_CHECK(max_bins >= 2);
  std::vector<QuantileSketch> sketches;
  sketches.reserve(x.columns());
  for (size_t f = 0; f < x.columns(); ++f) {
    sketches.emplace_back(sketch_capacity, /*seed=*/1234 + f);
  }
  for (size_t r = 0; r < x.rows(); ++r) {
    const auto cols = x.RowColumns(r);
    const auto vals = x.RowValues(r);
    for (size_t k = 0; k < cols.size(); ++k) {
      sketches[cols[k]].Add(vals[k]);
    }
  }
  BinCuts out;
  out.cuts.reserve(x.columns());
  for (auto& sketch : sketches) {
    out.cuts.push_back(sketch.GetCuts(max_bins));
  }
  return out;
}

BinnedMatrix BinnedMatrix::FromCsr(const CsrMatrix& x, const BinCuts& cuts) {
  BinnedMatrix out;
  out.num_columns_ = x.columns();
  out.row_ptr_.reserve(x.rows() + 1);
  out.col_idx_.reserve(x.nnz());
  out.bins_.reserve(x.nnz());
  for (size_t r = 0; r < x.rows(); ++r) {
    const auto cols = x.RowColumns(r);
    const auto vals = x.RowValues(r);
    for (size_t k = 0; k < cols.size(); ++k) {
      out.col_idx_.push_back(cols[k]);
      out.bins_.push_back(
          static_cast<uint16_t>(cuts.BinOf(cols[k], vals[k])));
    }
    out.row_ptr_.push_back(out.col_idx_.size());
  }
  return out;
}

}  // namespace vf2boost
