#include "data/quantile.h"

#include <algorithm>

namespace vf2boost {

QuantileSketch::QuantileSketch(size_t capacity, uint64_t seed)
    : capacity_(capacity), rng_(seed) {
  reservoir_.reserve(capacity);
}

void QuantileSketch::Add(float v) {
  ++count_;
  if (reservoir_.size() < capacity_) {
    reservoir_.push_back(v);
    return;
  }
  // Vitter's algorithm R.
  const uint64_t j = rng_.NextBounded(count_);
  if (j < capacity_) reservoir_[j] = v;
}

std::vector<float> QuantileSketch::GetCuts(size_t bins) const {
  std::vector<float> cuts;
  if (bins <= 1 || reservoir_.empty()) return cuts;
  std::vector<float> sorted = reservoir_;
  std::sort(sorted.begin(), sorted.end());
  cuts.reserve(bins - 1);
  for (size_t k = 1; k < bins; ++k) {
    const size_t idx = k * sorted.size() / bins;
    const float cut = sorted[std::min(idx, sorted.size() - 1)];
    if (cuts.empty() || cut > cuts.back()) cuts.push_back(cut);
  }
  return cuts;
}

}  // namespace vf2boost
