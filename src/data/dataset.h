#ifndef VF2BOOST_DATA_DATASET_H_
#define VF2BOOST_DATA_DATASET_H_

#include <string>
#include <vector>

#include "common/random.h"
#include "data/matrix.h"

namespace vf2boost {

/// \brief Feature matrix plus (optionally) labels.
///
/// In the vertical FL setting Party B's shard carries labels; Party A shards
/// have an empty label vector.
struct Dataset {
  CsrMatrix features;
  std::vector<float> labels;   // empty, or one per row
  std::vector<float> weights;  // empty (uniform), or one per row

  size_t rows() const { return features.rows(); }
  size_t columns() const { return features.columns(); }
  bool has_labels() const { return !labels.empty(); }
  bool has_weights() const { return !weights.empty(); }
};

/// Randomly shuffles row indices and splits into train (first
/// `train_fraction`) and validation parts. The paper uses 80/20.
void TrainValidSplit(const Dataset& data, double train_fraction, Rng* rng,
                     Dataset* train, Dataset* valid);

}  // namespace vf2boost

#endif  // VF2BOOST_DATA_DATASET_H_
