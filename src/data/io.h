#ifndef VF2BOOST_DATA_IO_H_
#define VF2BOOST_DATA_IO_H_

#include <string>

#include "common/result.h"
#include "data/dataset.h"

namespace vf2boost {

/// Reads a LIBSVM-format file (`label idx:val idx:val ...`, 0- or 1-based
/// indices auto-detected as 0-based; blank lines and '#' comments skipped).
/// num_columns of the result is max index + 1.
Result<Dataset> LoadLibsvm(const std::string& path);

/// Parses LIBSVM-format text directly (used by tests).
Result<Dataset> ParseLibsvm(const std::string& text);

/// Writes a dataset in LIBSVM format.
Status SaveLibsvm(const Dataset& data, const std::string& path);

/// Reads a dense CSV with a header row. `label_column` names the label
/// column; all other columns must be numeric features. Zero cells are kept
/// sparse.
Result<Dataset> LoadCsv(const std::string& path,
                        const std::string& label_column);

/// Parses CSV text directly (used by tests).
Result<Dataset> ParseCsv(const std::string& text,
                         const std::string& label_column);

}  // namespace vf2boost

#endif  // VF2BOOST_DATA_IO_H_
