#ifndef VF2BOOST_DATA_BINNING_H_
#define VF2BOOST_DATA_BINNING_H_

#include <cstdint>
#include <vector>

#include "data/matrix.h"

namespace vf2boost {

/// \brief Per-feature quantile cut points (the candidate splits).
///
/// Cuts are computed over *nonzero* values only; sparse zeros are treated as
/// missing and routed by each split's default direction — the standard
/// sparsity-aware trick (XGBoost §3.4, LightGBM), required here because the
/// paper's datasets go down to 0.03% density.
struct BinCuts {
  /// cuts[f] is ascending and deduplicated; feature f has cuts[f].size()+1
  /// value bins.
  std::vector<std::vector<float>> cuts;

  size_t num_features() const { return cuts.size(); }
  /// Number of value bins of feature f.
  size_t NumBins(uint32_t f) const { return cuts[f].size() + 1; }
  /// Bin of a nonzero value v: the count of cuts <= v.
  uint32_t BinOf(uint32_t f, float v) const;
  /// Split value of candidate `bin` (rule: nonzero v goes left iff
  /// v < SplitValue). Valid for bin < cuts[f].size().
  float SplitValue(uint32_t f, uint32_t bin) const { return cuts[f][bin]; }

  /// Total bins across features (the histogram width per statistic).
  size_t TotalBins() const;
};

/// Proposes quantile cuts for every feature of X (at most max_bins bins).
BinCuts ComputeBinCuts(const CsrMatrix& x, size_t max_bins,
                       size_t sketch_capacity = 16384);

/// \brief CSR matrix with values replaced by bin indices — the layout the
/// histogram builders scan.
class BinnedMatrix {
 public:
  static BinnedMatrix FromCsr(const CsrMatrix& x, const BinCuts& cuts);

  size_t rows() const { return row_ptr_.size() - 1; }
  size_t columns() const { return num_columns_; }

  std::span<const uint32_t> RowColumns(size_t i) const {
    return {col_idx_.data() + row_ptr_[i], row_ptr_[i + 1] - row_ptr_[i]};
  }
  std::span<const uint16_t> RowBins(size_t i) const {
    return {bins_.data() + row_ptr_[i], row_ptr_[i + 1] - row_ptr_[i]};
  }

 private:
  size_t num_columns_ = 0;
  std::vector<size_t> row_ptr_{0};
  std::vector<uint32_t> col_idx_;
  std::vector<uint16_t> bins_;
};

}  // namespace vf2boost

#endif  // VF2BOOST_DATA_BINNING_H_
