#ifndef VF2BOOST_DATA_PARTITION_H_
#define VF2BOOST_DATA_PARTITION_H_

#include <cstdint>
#include <vector>

#include "common/random.h"
#include "common/result.h"
#include "data/dataset.h"

namespace vf2boost {

/// \brief Assignment of global feature columns to parties.
///
/// party_columns[p] lists the global column ids owned by party p, in the
/// order they appear as party-local columns. In the two-party experiments
/// party 0 is Party A and the last party is Party B (the label owner).
struct VerticalSplitSpec {
  std::vector<std::vector<uint32_t>> party_columns;

  size_t num_parties() const { return party_columns.size(); }
};

/// Randomly assigns `total_columns` columns to parties in proportion to
/// `fractions` (need not sum to 1; they are normalized). Every party gets at
/// least one column when total_columns >= parties.
VerticalSplitSpec SplitColumnsRandomly(size_t total_columns,
                                       const std::vector<double>& fractions,
                                       Rng* rng);

/// One shard per party: the party's feature columns, plus labels only for
/// `label_party`. Returns InvalidArgument on malformed specs (duplicate or
/// out-of-range columns).
Result<std::vector<Dataset>> PartitionVertically(
    const Dataset& data, const VerticalSplitSpec& spec, size_t label_party);

}  // namespace vf2boost

#endif  // VF2BOOST_DATA_PARTITION_H_
