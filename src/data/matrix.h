#ifndef VF2BOOST_DATA_MATRIX_H_
#define VF2BOOST_DATA_MATRIX_H_

#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

#include "common/result.h"

namespace vf2boost {

/// One nonzero feature entry of an instance.
struct Entry {
  uint32_t column;
  float value;
};

/// \brief Immutable CSR (compressed sparse row) feature matrix.
///
/// Rows are instances, columns are features. All the paper's datasets are
/// sparse (rcv1 at 0.15%, the industrial set at 0.03% density), so both the
/// plain GBDT core and the federated engines operate on CSR throughout.
class CsrMatrix {
 public:
  CsrMatrix() = default;

  /// Builds from per-row entry lists. Columns within a row must be unique;
  /// they are sorted internally. `num_columns` may exceed any seen column.
  static Result<CsrMatrix> FromRows(
      const std::vector<std::vector<Entry>>& rows, size_t num_columns);

  size_t rows() const { return row_ptr_.empty() ? 0 : row_ptr_.size() - 1; }
  size_t columns() const { return num_columns_; }
  size_t nnz() const { return values_.size(); }
  /// Fraction of nonzero cells.
  double Density() const {
    const double cells = static_cast<double>(rows()) * columns();
    return cells == 0 ? 0.0 : nnz() / cells;
  }
  /// Average nonzeros per row (the paper's `d`).
  double AvgRowNnz() const {
    return rows() == 0 ? 0.0 : static_cast<double>(nnz()) / rows();
  }

  /// Nonzero column indices of row i (ascending).
  std::span<const uint32_t> RowColumns(size_t i) const {
    return {col_idx_.data() + row_ptr_[i], row_ptr_[i + 1] - row_ptr_[i]};
  }
  /// Matching values of row i.
  std::span<const float> RowValues(size_t i) const {
    return {values_.data() + row_ptr_[i], row_ptr_[i + 1] - row_ptr_[i]};
  }

  /// Value at (row, col); 0 for absent entries (binary search per call).
  float At(size_t row, uint32_t col) const;

  /// Projects onto a subset of columns, renumbering them 0..k-1 in the given
  /// order. Used for vertical partitioning across parties.
  CsrMatrix SelectColumns(const std::vector<uint32_t>& columns) const;

  /// Restricts to a subset of rows in the given order (e.g. PSI alignment,
  /// train/valid split).
  CsrMatrix SelectRows(const std::vector<size_t>& rows_subset) const;

 private:
  size_t num_columns_ = 0;
  std::vector<size_t> row_ptr_{0};
  std::vector<uint32_t> col_idx_;
  std::vector<float> values_;
};

}  // namespace vf2boost

#endif  // VF2BOOST_DATA_MATRIX_H_
