#ifndef VF2BOOST_DATA_SYNTHETIC_H_
#define VF2BOOST_DATA_SYNTHETIC_H_

#include <string>

#include "common/result.h"
#include "data/dataset.h"

namespace vf2boost {

/// \brief Shape of a synthetic binary-classification dataset.
///
/// Follows the generator sketched in Fu et al. (VLDB'19) §5.2, which the
/// paper cites for its ablation datasets: sparse rows with `density * cols`
/// nonzeros of N(0,1) values, and labels sampled from a hidden linear
/// teacher so that *every* feature carries signal — this is what makes the
/// vertical-FL AUC-lift experiments (Tables 4/6) meaningful, because
/// dropping Party A's columns measurably hurts the model.
struct SyntheticSpec {
  std::string name = "synthetic";
  size_t rows = 1000;
  size_t cols = 100;
  double density = 0.2;
  /// Steepness of the teacher's sigmoid; higher = easier task / higher AUC.
  double signal_strength = 2.0;
  uint64_t seed = 1;
};

/// Generates features and labels for the spec.
Dataset GenerateSynthetic(const SyntheticSpec& spec);

/// Shape-matched stand-ins for the paper's evaluation datasets (Table 3),
/// scaled down by `scale` in rows (features are scaled by sqrt(scale) with a
/// floor so that density-driven behaviour is preserved on one machine).
/// Known names: census, a9a, susy, epsilon, rcv1, synthesis, industry.
Result<SyntheticSpec> PaperDatasetSpec(const std::string& name, double scale);

}  // namespace vf2boost

#endif  // VF2BOOST_DATA_SYNTHETIC_H_
