#include "data/matrix.h"

#include <algorithm>
#include <unordered_map>

namespace vf2boost {

Result<CsrMatrix> CsrMatrix::FromRows(
    const std::vector<std::vector<Entry>>& rows, size_t num_columns) {
  CsrMatrix m;
  m.num_columns_ = num_columns;
  m.row_ptr_.reserve(rows.size() + 1);
  for (const auto& row : rows) {
    std::vector<Entry> sorted = row;
    std::sort(sorted.begin(), sorted.end(),
              [](const Entry& a, const Entry& b) { return a.column < b.column; });
    for (size_t i = 0; i < sorted.size(); ++i) {
      if (sorted[i].column >= num_columns) {
        return Status::InvalidArgument(
            "column " + std::to_string(sorted[i].column) + " out of range");
      }
      if (i > 0 && sorted[i].column == sorted[i - 1].column) {
        return Status::InvalidArgument(
            "duplicate column " + std::to_string(sorted[i].column) +
            " in row " + std::to_string(m.row_ptr_.size() - 1));
      }
      m.col_idx_.push_back(sorted[i].column);
      m.values_.push_back(sorted[i].value);
    }
    m.row_ptr_.push_back(m.col_idx_.size());
  }
  return m;
}

float CsrMatrix::At(size_t row, uint32_t col) const {
  const auto cols = RowColumns(row);
  const auto it = std::lower_bound(cols.begin(), cols.end(), col);
  if (it == cols.end() || *it != col) return 0.0f;
  return RowValues(row)[static_cast<size_t>(it - cols.begin())];
}

CsrMatrix CsrMatrix::SelectColumns(const std::vector<uint32_t>& columns) const {
  std::unordered_map<uint32_t, uint32_t> remap;
  remap.reserve(columns.size());
  for (uint32_t i = 0; i < columns.size(); ++i) remap[columns[i]] = i;

  CsrMatrix out;
  out.num_columns_ = columns.size();
  out.row_ptr_.reserve(rows() + 1);
  for (size_t r = 0; r < rows(); ++r) {
    const auto cols = RowColumns(r);
    const auto vals = RowValues(r);
    std::vector<Entry> entries;
    for (size_t k = 0; k < cols.size(); ++k) {
      const auto it = remap.find(cols[k]);
      if (it != remap.end()) entries.push_back({it->second, vals[k]});
    }
    std::sort(entries.begin(), entries.end(),
              [](const Entry& a, const Entry& b) { return a.column < b.column; });
    for (const Entry& e : entries) {
      out.col_idx_.push_back(e.column);
      out.values_.push_back(e.value);
    }
    out.row_ptr_.push_back(out.col_idx_.size());
  }
  return out;
}

CsrMatrix CsrMatrix::SelectRows(const std::vector<size_t>& rows_subset) const {
  CsrMatrix out;
  out.num_columns_ = num_columns_;
  out.row_ptr_.reserve(rows_subset.size() + 1);
  for (size_t r : rows_subset) {
    const auto cols = RowColumns(r);
    const auto vals = RowValues(r);
    out.col_idx_.insert(out.col_idx_.end(), cols.begin(), cols.end());
    out.values_.insert(out.values_.end(), vals.begin(), vals.end());
    out.row_ptr_.push_back(out.col_idx_.size());
  }
  return out;
}

}  // namespace vf2boost
