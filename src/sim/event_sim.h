#ifndef VF2BOOST_SIM_EVENT_SIM_H_
#define VF2BOOST_SIM_EVENT_SIM_H_

#include <cstddef>
#include <string>
#include <vector>

namespace vf2boost {

/// \brief Deterministic task-graph scheduler used to predict protocol
/// makespans at paper scale.
///
/// Resources model the three bottleneck pools of the deployment — Party B's
/// CPU cores, the WAN link, Party A's CPU cores. Tasks carry a duration and
/// dependencies; Run() computes a greedy earliest-start schedule (exact for
/// capacity-1 resources with chain dependencies, which is the structure the
/// protocol graphs have).
class EventSim {
 public:
  using ResourceId = size_t;
  using TaskId = size_t;

  struct Task {
    std::string label;
    ResourceId resource = 0;
    double duration = 0;
    std::vector<TaskId> deps;
    // Filled by Run().
    double start = 0;
    double finish = 0;
  };

  struct Resource {
    std::string name;
    size_t capacity = 1;
  };

  ResourceId AddResource(std::string name, size_t capacity = 1);
  TaskId AddTask(ResourceId resource, double duration, std::string label,
                 std::vector<TaskId> deps = {});

  /// Schedules every task; returns the makespan. May be called once.
  double Run();

  const std::vector<Task>& tasks() const { return tasks_; }
  const std::vector<Resource>& resources() const { return resources_; }

 private:
  std::vector<Task> tasks_;
  std::vector<Resource> resources_;
};

}  // namespace vf2boost

#endif  // VF2BOOST_SIM_EVENT_SIM_H_
