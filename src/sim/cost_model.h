#ifndef VF2BOOST_SIM_COST_MODEL_H_
#define VF2BOOST_SIM_COST_MODEL_H_

#include <cstddef>
#include <string>

namespace vf2boost {

/// \brief Unit costs (seconds per op, single thread) of the primitives the
/// vertical federated GBDT protocol is built from — the paper's cost model
/// of §5 (T_ENC, T_DEC, T_HADD, T_SMUL, T_COMM).
///
/// Two sources: Calibrate() measures this machine's own Paillier library
/// (so simulated and real runs agree), and PaperScale() encodes the
/// environment of the paper's evaluation (S = 2048, 16-core nodes, 8-worker
/// parties, 300 Mbps WAN) reverse-fitted from Table 1.
struct CostModel {
  // Cryptography (per operation, one thread).
  double t_enc = 3.0e-3;    ///< Paillier encryption
  double t_dec = 1.5e-3;    ///< CRT decryption
  double t_hadd = 9.0e-5;   ///< homomorphic addition (same exponent)
  double t_scale = 4.5e-4;  ///< cipher scaling (SMul by B^k, small k)
  double t_smul = 1.5e-3;   ///< scalar multiplication (word-size scalar)
  double t_pack_slot = 6.0e-4;  ///< pack one slot: SMul(2^M) + HAdd

  // Plaintext GBDT (per nonzero entry / per bin).
  double t_plain_hist = 4.0e-9;
  double t_split_scan = 8.0e-9;

  // Wire.
  double cipher_bytes = 512;  ///< 2S bits
  double bandwidth_bytes_per_sec = 37.5e6;  ///< 300 Mbps
  double latency_seconds = 0.01;

  /// Number of distinct fixed-point exponents E (affects scaling counts).
  double num_exponents = 4;
  /// Histogram-packing slots per cipher (paper: 32 at S=2048, M=64).
  double pack_slots = 32;
  /// Amdahl-style coordination loss per extra worker (stragglers, shuffle,
  /// scheduler overhead): effective parallelism = w / (1 + f*(w-1)).
  double straggler_factor = 0.08;
  /// Cross-party synchronization cost B pays per layer per A party.
  double party_sync_seconds = 2.0;

  /// w workers deliver this much ideal-worker parallelism.
  double EffectiveWorkers(double w) const {
    return w / (1.0 + straggler_factor * (w - 1.0));
  }

  /// Measures the crypto primitives of this build at `key_bits` and returns
  /// a model whose network matches `bandwidth_mbps`/`latency`.
  static CostModel Calibrate(size_t key_bits, double bandwidth_mbps = 300,
                             double latency_seconds = 0.01);

  /// The paper's environment (S = 2048): fitted so the simulated Table 1
  /// baseline reproduces the paper's Enc/Comm/HAdd breakdown.
  static CostModel PaperScale();

  std::string ToString() const;
};

}  // namespace vf2boost

#endif  // VF2BOOST_SIM_COST_MODEL_H_
