#include "sim/event_sim.h"

#include <algorithm>
#include <queue>

#include "common/logging.h"

namespace vf2boost {

EventSim::ResourceId EventSim::AddResource(std::string name, size_t capacity) {
  resources_.push_back({std::move(name), std::max<size_t>(1, capacity)});
  return resources_.size() - 1;
}

EventSim::TaskId EventSim::AddTask(ResourceId resource, double duration,
                                   std::string label,
                                   std::vector<TaskId> deps) {
  VF2_CHECK(resource < resources_.size());
  for (TaskId d : deps) VF2_CHECK(d < tasks_.size()) << "dep on later task";
  tasks_.push_back({std::move(label), resource, std::max(0.0, duration),
                    std::move(deps), 0, 0});
  return tasks_.size() - 1;
}

double EventSim::Run() {
  // Per-resource slot availability times.
  std::vector<std::vector<double>> slots(resources_.size());
  for (size_t r = 0; r < resources_.size(); ++r) {
    slots[r].assign(resources_[r].capacity, 0.0);
  }

  // Dependency bookkeeping.
  std::vector<size_t> remaining(tasks_.size(), 0);
  std::vector<std::vector<TaskId>> dependents(tasks_.size());
  std::vector<double> ready_time(tasks_.size(), 0.0);
  for (TaskId t = 0; t < tasks_.size(); ++t) {
    remaining[t] = tasks_[t].deps.size();
    for (TaskId d : tasks_[t].deps) dependents[d].push_back(t);
  }

  // Ready queue ordered by (ready time, insertion order).
  using Entry = std::pair<double, TaskId>;
  std::priority_queue<Entry, std::vector<Entry>, std::greater<Entry>> ready;
  for (TaskId t = 0; t < tasks_.size(); ++t) {
    if (remaining[t] == 0) ready.push({0.0, t});
  }

  size_t scheduled = 0;
  double makespan = 0;
  while (!ready.empty()) {
    auto [ready_at, t] = ready.top();
    ready.pop();
    Task& task = tasks_[t];
    // Earliest-available slot of the task's resource.
    auto& res_slots = slots[task.resource];
    auto slot = std::min_element(res_slots.begin(), res_slots.end());
    task.start = std::max(ready_at, *slot);
    task.finish = task.start + task.duration;
    *slot = task.finish;
    makespan = std::max(makespan, task.finish);
    ++scheduled;
    for (TaskId dep : dependents[t]) {
      ready_time[dep] = std::max(ready_time[dep], task.finish);
      if (--remaining[dep] == 0) ready.push({ready_time[dep], dep});
    }
  }
  VF2_CHECK(scheduled == tasks_.size()) << "dependency cycle in task graph";
  return makespan;
}

}  // namespace vf2boost
