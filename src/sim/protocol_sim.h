#ifndef VF2BOOST_SIM_PROTOCOL_SIM_H_
#define VF2BOOST_SIM_PROTOCOL_SIM_H_

#include <memory>

#include "sim/cost_model.h"
#include "sim/event_sim.h"

namespace vf2boost {

/// Shape of a simulated federated training workload.
struct SimWorkload {
  double instances = 1e6;      ///< N
  double features_a = 25000;   ///< D_A (total across A parties)
  double features_b = 25000;   ///< D_B
  double density = 0.002;      ///< nonzero fraction
  double bins = 20;            ///< s
  double layers = 7;           ///< L
  double workers = 8;          ///< workers per party
  double parties_a = 1;        ///< number of A parties

  double NnzPerInstanceA() const { return density * features_a; }
  double NnzPerInstanceB() const { return density * features_b; }
};

/// Which of the paper's optimizations the simulated protocol uses.
struct SimFlags {
  bool blaster = false;
  bool reordered = false;
  bool optimistic = false;
  bool packing = false;
  /// Batches the blaster splits the gradient stream into.
  size_t blaster_batches = 16;
};

/// Simulation outcome: makespan plus per-phase busy time (the Table 1
/// "Enc/Comm/HAdd" style breakdown) and the scheduled task graph for Gantt
/// rendering.
struct SimReport {
  double total_seconds = 0;
  double enc_seconds = 0;    ///< Party B encryption busy time
  double comm_seconds = 0;   ///< WAN busy time
  double hadd_seconds = 0;   ///< Party A histogram busy time
  double dec_seconds = 0;    ///< Party B decryption busy time
  std::shared_ptr<EventSim> sim;  ///< scheduled graph (resources 0=B,1=WAN,2=A)
};

/// Simulates processing of the ROOT node only: gradient encryption, cipher
/// transfer, and BuildHistA (paper Table 1 / Figure 4).
SimReport SimulateRootNode(const SimWorkload& w, const SimFlags& flags,
                           const CostModel& cost);

/// Simulates one full decision tree (paper Table 2 / Figure 5 / Tables 5-6).
SimReport SimulateTree(const SimWorkload& w, const SimFlags& flags,
                       const CostModel& cost);

}  // namespace vf2boost

#endif  // VF2BOOST_SIM_PROTOCOL_SIM_H_
