#ifndef VF2BOOST_SIM_GANTT_H_
#define VF2BOOST_SIM_GANTT_H_

#include <string>

#include "sim/event_sim.h"

namespace vf2boost {

/// Renders a scheduled EventSim as a text Gantt chart (one row per
/// resource), the tool the paper uses to analyze protocol overlap
/// (Figures 4-6). Each task paints its phase letter (first character of its
/// label); '.' is idle time.
std::string RenderGantt(const EventSim& sim, size_t width = 100);

}  // namespace vf2boost

#endif  // VF2BOOST_SIM_GANTT_H_
