#include "sim/gantt.h"

#include <algorithm>
#include <cstdio>
#include <vector>

namespace vf2boost {

std::string RenderGantt(const EventSim& sim, size_t width) {
  double makespan = 0;
  for (const auto& t : sim.tasks()) makespan = std::max(makespan, t.finish);
  if (makespan <= 0 || width == 0) return "(empty schedule)\n";

  size_t name_width = 0;
  for (const auto& r : sim.resources()) {
    name_width = std::max(name_width, r.name.size());
  }

  std::vector<std::string> rows(sim.resources().size(),
                                std::string(width, '.'));
  for (const auto& t : sim.tasks()) {
    if (t.duration <= 0) continue;
    size_t begin = static_cast<size_t>(t.start / makespan * width);
    size_t end = static_cast<size_t>(t.finish / makespan * width);
    begin = std::min(begin, width - 1);
    end = std::min(std::max(end, begin + 1), width);
    const char phase = t.label.empty() ? '?' : t.label[0];
    for (size_t i = begin; i < end; ++i) rows[t.resource][i] = phase;
  }

  std::string out;
  for (size_t r = 0; r < rows.size(); ++r) {
    std::string name = sim.resources()[r].name;
    name.resize(name_width, ' ');
    out += name + " |" + rows[r] + "|\n";
  }
  char footer[128];
  std::snprintf(footer, sizeof(footer),
                "%*s  0%*s%.1fs\n", static_cast<int>(name_width), "",
                static_cast<int>(width - 1), "", makespan);
  out += footer;
  out += "  (E=encrypt C=cipher-comm H=build-hist-A D=decrypt F=find-split-B"
         " P=place/sync)\n";
  return out;
}

}  // namespace vf2boost
