#include "sim/protocol_sim.h"

#include <algorithm>
#include <cmath>
#include <string>

namespace vf2boost {

namespace {

// Work (seconds, after intra-party parallelization) of Party A accumulating
// one full scan of the instances into encrypted histograms for the `nodes`
// active nodes of one layer.
double HistAddWork(const SimWorkload& w, const SimFlags& flags,
                   const CostModel& cost, double nodes) {
  // features_a counts ALL A-party features; the parties build their own
  // shares concurrently, so wall-clock work is per-party.
  const double party_features = w.features_a / w.parties_a;
  const double adds =
      2.0 * w.instances * w.density * party_features;
  double scalings;
  if (flags.reordered) {
    // E-1 scalings per bin at finalize.
    scalings =
        2.0 * party_features * w.bins * nodes * (cost.num_exponents - 1);
  } else {
    scalings = adds * (cost.num_exponents - 1) / cost.num_exponents;
  }
  // Intra-party aggregation: every worker ships its partial encrypted
  // histograms for merging; the merge volume is the full layer histogram and
  // does not shrink with more workers (the Table 5 sublinearity).
  const double agg = 2.0 * party_features * w.bins * nodes * cost.t_hadd *
                     (1.0 - 1.0 / w.workers);
  return (adds * cost.t_hadd + scalings * cost.t_scale) /
             cost.EffectiveWorkers(w.workers) +
         agg;
}

// Nodes that are still splittable at a layer. Real trees thin out quickly —
// most nodes stop splitting well before the depth limit — so the effective
// width saturates instead of doubling forever.
double EffectiveNodes(const SimWorkload& w, double layer) {
  return std::min({std::pow(2.0, layer), 16.0, w.instances});
}

// Per-layer histogram size (ciphers) Party A ships to B.
double LayerHistCiphers(const SimWorkload& w, double layer) {
  return EffectiveNodes(w, layer) * 2.0 * w.features_a * w.bins;
}

SimReport FinishReport(std::shared_ptr<EventSim> sim) {
  SimReport r;
  r.total_seconds = sim->Run();
  for (const auto& task : sim->tasks()) {
    const char phase = task.label.empty() ? '?' : task.label[0];
    switch (phase) {
      case 'E':
        r.enc_seconds += task.duration;
        break;
      case 'C':
        r.comm_seconds += task.duration;
        break;
      case 'H':
        r.hadd_seconds += task.duration;
        break;
      case 'D':
        r.dec_seconds += task.duration;
        break;
      default:
        break;
    }
  }
  r.sim = std::move(sim);
  return r;
}

}  // namespace

SimReport SimulateRootNode(const SimWorkload& w, const SimFlags& flags,
                           const CostModel& cost) {
  auto sim = std::make_shared<EventSim>();
  const auto b_cpu = sim->AddResource("PartyB");
  const auto wan = sim->AddResource("WAN");
  const auto a_cpu = sim->AddResource("PartyA");

  const size_t batches = flags.blaster ? std::max<size_t>(1, flags.blaster_batches) : 1;
  const double enc_total =
      2.0 * w.instances * cost.t_enc / cost.EffectiveWorkers(w.workers);
  const double comm_total = w.parties_a * 2.0 * w.instances *
                                cost.cipher_bytes /
                                cost.bandwidth_bytes_per_sec;
  const double hist_total = HistAddWork(w, flags, cost, 1);

  EventSim::TaskId prev_enc = 0, prev_comm = 0, prev_hist = 0;
  for (size_t k = 0; k < batches; ++k) {
    std::vector<EventSim::TaskId> enc_deps, comm_deps, hist_deps;
    if (k > 0) {
      enc_deps = {prev_enc};
      comm_deps = {prev_comm};
      hist_deps = {prev_hist};
    }
    const auto enc = sim->AddTask(b_cpu, enc_total / batches,
                                  "Enc#" + std::to_string(k), enc_deps);
    comm_deps.push_back(enc);
    const auto comm =
        sim->AddTask(wan, comm_total / batches + cost.latency_seconds,
                     "Comm#" + std::to_string(k), comm_deps);
    hist_deps.push_back(comm);
    const auto hist = sim->AddTask(a_cpu, hist_total / batches,
                                   "HAdd#" + std::to_string(k), hist_deps);
    prev_enc = enc;
    prev_comm = comm;
    prev_hist = hist;
  }
  return FinishReport(std::move(sim));
}

SimReport SimulateTree(const SimWorkload& w, const SimFlags& flags,
                       const CostModel& cost) {
  auto sim = std::make_shared<EventSim>();
  const auto b_cpu = sim->AddResource("PartyB");
  const auto wan = sim->AddResource("WAN");
  const auto a_cpu = sim->AddResource("PartyA");

  // Expected fraction of nodes whose best split Party A owns — the paper's
  // optimistic-failure probability D_A / (D_A + D_B).
  const double p_dirty = w.features_a / (w.features_a + w.features_b);

  // --- root prologue: gradient encryption + transfer + BuildHistA(0) -------
  const size_t batches =
      flags.blaster ? std::max<size_t>(1, flags.blaster_batches) : 1;
  const double enc_total =
      2.0 * w.instances * cost.t_enc / cost.EffectiveWorkers(w.workers);
  const double grad_comm = w.parties_a * 2.0 * w.instances *
                               cost.cipher_bytes /
                               cost.bandwidth_bytes_per_sec;
  const double hist_work = HistAddWork(w, flags, cost, 1);

  EventSim::TaskId last_hist = 0;
  {
    EventSim::TaskId prev_enc = 0, prev_comm = 0, prev_hist = 0;
    for (size_t k = 0; k < batches; ++k) {
      std::vector<EventSim::TaskId> enc_deps, comm_deps, hist_deps;
      if (k > 0) {
        enc_deps = {prev_enc};
        comm_deps = {prev_comm};
        hist_deps = {prev_hist};
      }
      const auto enc = sim->AddTask(b_cpu, enc_total / batches, "Enc#0", enc_deps);
      comm_deps.push_back(enc);
      const auto comm = sim->AddTask(
          wan, grad_comm / batches + cost.latency_seconds, "Comm#g", comm_deps);
      hist_deps.push_back(comm);
      prev_hist = sim->AddTask(a_cpu, hist_work / batches, "HAdd#L0", hist_deps);
      prev_enc = enc;
      prev_comm = comm;
    }
    last_hist = prev_hist;
  }

  // --- layers ---------------------------------------------------------------
  // Per layer l: A's layer-l histograms go to B (comm), B decrypts and
  // validates/finds splits, placements come back, A builds layer l+1.
  EventSim::TaskId last_b_task = 0;
  bool have_b_task = false;
  const size_t split_layers = static_cast<size_t>(std::max(1.0, w.layers - 1));
  for (size_t layer = 0; layer + 1 <= split_layers; ++layer) {
    const double hist_ciphers =
        LayerHistCiphers(w, static_cast<double>(layer));
    double wire_ciphers = hist_ciphers;
    double dec_ops = hist_ciphers;
    double pack_work = 0;
    if (flags.packing) {
      wire_ciphers = hist_ciphers / cost.pack_slots;
      dec_ops = hist_ciphers / cost.pack_slots;
      pack_work = hist_ciphers * cost.t_pack_slot /
                  cost.EffectiveWorkers(w.workers);
    }
    const std::string ls = std::to_string(layer);

    // A packs (optional) and ships layer-l histograms. Node histograms are
    // individual messages, so transfer and decryption stream per node: model
    // them as two pipelined halves so validation of the first nodes lands
    // while the rest is still in flight.
    EventSim::TaskId ship_dep = last_hist;
    if (pack_work > 0) {
      ship_dep = sim->AddTask(a_cpu, pack_work, "HPack#L" + ls, {last_hist});
    }
    const double comm_time =
        wire_ciphers * cost.cipher_bytes / cost.bandwidth_bytes_per_sec +
        cost.latency_seconds;
    const auto comm1 =
        sim->AddTask(wan, comm_time / 2, "Comm#L" + ls + "a", {ship_dep});
    const auto comm2 =
        sim->AddTask(wan, comm_time / 2, "Comm#L" + ls + "b", {comm1});

    // B's own split finding for this layer (fast, plaintext).
    const double find_b_work =
        (w.instances * w.NnzPerInstanceB() * cost.t_plain_hist +
         (w.features_a + w.features_b) * w.bins * cost.t_split_scan *
             std::pow(2.0, static_cast<double>(layer))) /
        w.workers;
    std::vector<EventSim::TaskId> fb_deps;
    if (have_b_task) fb_deps.push_back(last_b_task);
    const auto find_b = sim->AddTask(b_cpu, find_b_work, "FindB#L" + ls, fb_deps);

    // B decrypts A's histograms and validates (FindSplitA), per node.
    const double dec_time =
        dec_ops * cost.t_dec / cost.EffectiveWorkers(w.workers);
    const auto dec1 = sim->AddTask(b_cpu, dec_time / 2, "Dec#L" + ls + "a",
                                   {comm1, find_b});
    const auto dec2 = sim->AddTask(b_cpu, dec_time / 2, "Dec#L" + ls + "b",
                                   {comm2, dec1});
    // Cross-party coordination: B synchronizes one round with every A party
    // per layer (multi-party runs pay this parties_a times, Table 6).
    const auto dec = sim->AddTask(
        b_cpu, cost.party_sync_seconds * w.parties_a, "Sync#L" + ls, {dec2});
    last_b_task = dec;
    have_b_task = true;

    if (layer + 1 == split_layers) break;  // children are leaves

    // Next-layer BuildHistA.


    const double next_hist_work = HistAddWork(w, flags, cost, EffectiveNodes(w, static_cast<double>(layer) + 1));
    if (flags.optimistic) {
      // Placement comes from B's own optimistic split: A starts the next
      // layer as soon as its current build ends (placement latency only).
      const auto opt_placement = sim->AddTask(
          wan, cost.latency_seconds, "Place#L" + ls, {find_b});
      const auto clean_part = sim->AddTask(
          a_cpu, next_hist_work * (1.0 - p_dirty), "HAdd#L" + ls + "c",
          {last_hist, opt_placement});
      // The dirty share must wait for validation (Dec) and is re-done. The
      // sub-task slicing of §4.2 aborts in-flight dirty work once validation
      // lands, so the waste beyond the redo itself depends on how early the
      // verdict arrives — packing accelerates discovery ("Party B can
      // discover the invalid optimistic splits earlier, saving more time
      // from the dirty nodes", §6.2).
      const double waste = flags.packing ? 1.0 : 1.15;
      // Dirty verdicts stream back with the first validated nodes (dec1).
      const auto redo_placement = sim->AddTask(
          wan, cost.latency_seconds, "Place#L" + ls + "d", {dec1});
      const auto dirty_part = sim->AddTask(
          a_cpu, next_hist_work * p_dirty * waste, "HAdd#L" + ls + "d",
          {clean_part, redo_placement});
      last_hist = dirty_part;
    } else {
      // Sequential: A waits for B's decryption + split decision.
      const auto placement = sim->AddTask(
          wan, cost.latency_seconds, "Place#L" + ls, {dec});
      last_hist = sim->AddTask(a_cpu, next_hist_work, "HAdd#L" + ls + "n",
                               {last_hist, placement});
    }
  }
  return FinishReport(std::move(sim));
}

}  // namespace vf2boost
