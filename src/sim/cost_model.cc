#include "sim/cost_model.h"

#include <sstream>

#include "common/logging.h"
#include "common/random.h"
#include "common/timer.h"
#include "crypto/backend.h"
#include "crypto/packing.h"
#include "crypto/paillier.h"

namespace vf2boost {

namespace {

// Times `op` repeatedly until ~50 ms elapse; returns seconds per call.
template <typename Fn>
double TimePerCall(Fn&& op, int min_iters = 4) {
  Stopwatch clock;
  int iters = 0;
  do {
    op();
    ++iters;
  } while (clock.ElapsedSeconds() < 0.05 || iters < min_iters);
  return clock.ElapsedSeconds() / iters;
}

}  // namespace

CostModel CostModel::Calibrate(size_t key_bits, double bandwidth_mbps,
                               double latency_seconds) {
  CostModel m;
  Rng rng(0xCAFE);
  auto kp = PaillierKeyPair::Generate(key_bits, &rng);
  VF2_CHECK(kp.ok()) << kp.status().ToString();
  FixedPointCodec codec(16, 8, 4);
  PaillierBackend backend(kp->pub, codec);
  backend.SetPrivateKey(kp->priv);

  Cipher c1 = backend.EncryptAt(0.5, 9, &rng);
  Cipher c2 = backend.EncryptAt(-0.25, 9, &rng);
  Cipher low = backend.EncryptAt(0.125, 8, &rng);

  m.t_enc = TimePerCall([&] { backend.Encrypt(0.37, &rng); });
  m.t_dec = TimePerCall([&] { backend.Decrypt(c1); });
  m.t_hadd = TimePerCall([&] { c1.data = backend.HAddRaw(c1.data, c2.data); });
  m.t_scale = TimePerCall([&] { backend.ScaleTo(low, 9); });
  const BigInt scalar(123456789);
  m.t_smul = TimePerCall([&] { backend.SMulRaw(scalar, c2.data); });
  const BigInt shift = BigInt(1) << 64;
  m.t_pack_slot = TimePerCall([&] {
    c2.data = backend.HAddRaw(c1.data, backend.SMulRaw(shift, c2.data));
  });

  m.cipher_bytes = static_cast<double>(kp->pub.CipherBytes());
  m.pack_slots = static_cast<double>(
      MaxSlotsPerCipher(64, kp->pub.n().BitLength()));
  if (m.pack_slots < 1) m.pack_slots = 1;
  m.bandwidth_bytes_per_sec = bandwidth_mbps * 1e6 / 8;
  m.latency_seconds = latency_seconds;
  return m;
}

CostModel CostModel::PaperScale() {
  // Reverse-fitted from Table 1 (N = 2.5M, D = 25K+25K, density 0.2%,
  // 8 workers x 16 cores per party): Enc 116 s for 5M ciphers,
  // HAdd-dominated histogram phase 248 s over 250M additions, 2.56 GB of
  // gradient ciphers in 44 s.
  CostModel m;
  // One "worker" is one 16-core machine; costs below are per worker-machine.
  // Table 1 was measured at 8 workers, so the fit divides by the EFFECTIVE
  // parallelism of 8 workers (straggler model), not the ideal 8.
  const double machines = m.EffectiveWorkers(8);
  m.t_enc = 116.0 * machines / 5e6;
  // Effective per-cipher cost on B's side of FindSplitA: CRT decryption plus
  // decode/unpack and the gain scan. Fitted so the decryption phase carries
  // the share Table 2 implies (it "gradually dominates as the tree goes
  // deeper", §5.2).
  m.t_dec = 400e-6;
  m.t_hadd = 179.0 * machines / 250e6;
  m.t_scale = 69.0 * machines / (0.75 * 250e6);  // naive pays ~(E-1)/E each
  // Packing/SMul costs follow the physical modmul cost implied by t_enc
  // (one encryption is ~1.5*S modmuls at S = 2048): SMul(2^64) is 64
  // squarings, far cheaper than one decryption.
  const double t_modmul = m.t_enc / 3072;
  m.t_smul = 96 * t_modmul;
  m.t_pack_slot = 65 * t_modmul;
  m.t_plain_hist = 4.0e-9;
  m.t_split_scan = 8.0e-9;
  m.cipher_bytes = 512;                     // 4096-bit ciphertexts
  m.bandwidth_bytes_per_sec = 2.56e9 / 44;  // fits the Comm column
  m.latency_seconds = 0.03;
  m.num_exponents = 4;
  m.pack_slots = 32;
  return m;
}

std::string CostModel::ToString() const {
  std::ostringstream out;
  out << "CostModel{enc=" << t_enc * 1e3 << "ms dec=" << t_dec * 1e3
      << "ms hadd=" << t_hadd * 1e6 << "us scale=" << t_scale * 1e6
      << "us smul=" << t_smul * 1e3 << "ms pack_slot=" << t_pack_slot * 1e6
      << "us cipher=" << cipher_bytes << "B bw="
      << bandwidth_bytes_per_sec * 8 / 1e6 << "Mbps}";
  return out.str();
}

}  // namespace vf2boost
