#include "gbdt/loss.h"

#include <cmath>

#include "common/logging.h"

namespace vf2boost {

void Loss::Compute(const std::vector<double>& scores,
                   const std::vector<float>& labels,
                   std::vector<GradPair>* out,
                   const std::vector<float>* weights) const {
  VF2_CHECK(scores.size() == labels.size());
  const bool weighted = weights != nullptr && !weights->empty();
  if (weighted) VF2_CHECK(weights->size() == scores.size());
  out->resize(scores.size());
  for (size_t i = 0; i < scores.size(); ++i) {
    GradPair gp = GradHess(scores[i], labels[i]);
    if (weighted) {
      gp.g *= (*weights)[i];
      gp.h *= (*weights)[i];
    }
    (*out)[i] = gp;
  }
}

GradPair LogisticLoss::GradHess(double score, float label) const {
  const double p = 1.0 / (1.0 + std::exp(-score));
  return {p - label, std::max(p * (1.0 - p), 1e-16)};
}

double LogisticLoss::Value(double score, float label) const {
  // Stable -[y log p + (1-y) log(1-p)].
  return std::log1p(std::exp(-std::fabs(score))) +
         (score > 0 ? (1 - label) * score : -label * score);
}

GradPair SquaredLoss::GradHess(double score, float label) const {
  return {score - label, 1.0};
}

double SquaredLoss::Value(double score, float label) const {
  const double d = score - label;
  return 0.5 * d * d;
}

Result<std::unique_ptr<Loss>> MakeLoss(const std::string& objective) {
  if (objective == "logistic") {
    return std::unique_ptr<Loss>(std::make_unique<LogisticLoss>());
  }
  if (objective == "squared") {
    return std::unique_ptr<Loss>(std::make_unique<SquaredLoss>());
  }
  return Status::InvalidArgument("unknown objective: " + objective);
}

}  // namespace vf2boost
