#ifndef VF2BOOST_GBDT_SPLIT_H_
#define VF2BOOST_GBDT_SPLIT_H_

#include <cstdint>
#include <limits>
#include <vector>

#include "gbdt/histogram.h"
#include "gbdt/types.h"

namespace vf2boost {

/// \brief One candidate split of a tree node.
struct SplitCandidate {
  double gain = -std::numeric_limits<double>::infinity();
  uint32_t feature = 0;  ///< party-local (fed) or global (plain) feature id
  uint32_t bin = 0;      ///< nonzero values with BinOf(v) <= bin go left
  bool default_left = true;  ///< where missing/zero values go
  GradPair left_sum;
  GradPair right_sum;

  bool valid() const { return gain > 0; }
};

/// Optimal leaf weight -G / (H + lambda) (Equation 1).
double LeafWeight(const GradPair& sum, const GbdtParams& params);

/// SplitGain of a (left, right) partition of `total` (paper §2.1).
double SplitGain(const GradPair& left, const GradPair& right,
                 const GradPair& total, const GbdtParams& params);

/// Scans every (feature, bin, default-direction) candidate of `hist` and
/// returns the best. `total` is the node's full gradient sum — per-feature
/// missing statistics are derived as total - FeatureSum(f), which is how
/// sparse zeros participate without ever being materialized.
/// `allowed_features`, when non-null, restricts the scan (column
/// subsampling); it must have one entry per feature.
SplitCandidate FindBestSplit(const Histogram& hist,
                             const FeatureLayout& layout,
                             const GradPair& total, const GbdtParams& params,
                             const std::vector<uint8_t>* allowed_features =
                                 nullptr);

}  // namespace vf2boost

#endif  // VF2BOOST_GBDT_SPLIT_H_
