#include "gbdt/importance.h"

#include <algorithm>
#include <numeric>

#include "common/logging.h"

namespace vf2boost {

std::vector<double> FeatureImportance(const GbdtModel& model,
                                      size_t num_features,
                                      ImportanceType type) {
  std::vector<double> importance(num_features, 0.0);
  for (const Tree& tree : model.trees) {
    for (size_t i = 0; i < tree.size(); ++i) {
      const TreeNode& n = tree.node(static_cast<int32_t>(i));
      if (n.is_leaf()) continue;
      VF2_CHECK(n.owner_party < 0)
          << "FeatureImportance needs a joint model (see ToJointModel)";
      if (n.feature >= num_features) continue;
      importance[n.feature] +=
          type == ImportanceType::kGain ? std::max(0.0, n.gain) : 1.0;
    }
  }
  return importance;
}

std::vector<size_t> TopFeatures(const std::vector<double>& importance,
                                size_t k) {
  std::vector<size_t> order(importance.size());
  std::iota(order.begin(), order.end(), 0);
  std::stable_sort(order.begin(), order.end(), [&](size_t a, size_t b) {
    return importance[a] > importance[b];
  });
  order.resize(std::min(k, order.size()));
  return order;
}

}  // namespace vf2boost
