#ifndef VF2BOOST_GBDT_HISTOGRAM_H_
#define VF2BOOST_GBDT_HISTOGRAM_H_

#include <cstdint>
#include <vector>

#include "data/binning.h"
#include "gbdt/types.h"

namespace vf2boost {

/// \brief Flat addressing of (feature, bin) pairs into one array.
struct FeatureLayout {
  /// offsets[f] is the flat index of feature f's bin 0; offsets.back() is
  /// the total bin count.
  std::vector<uint32_t> offsets;

  static FeatureLayout FromCuts(const BinCuts& cuts);

  size_t num_features() const { return offsets.size() - 1; }
  size_t total_bins() const { return offsets.back(); }
  size_t NumBins(uint32_t f) const { return offsets[f + 1] - offsets[f]; }
  size_t Flat(uint32_t f, uint32_t bin) const { return offsets[f] + bin; }
};

/// \brief Plaintext gradient histogram: one GradPair per (feature, bin).
///
/// This is the structure Party B builds over its own features, and the
/// plaintext twin of the encrypted histograms Party A builds (src/fed).
class Histogram {
 public:
  Histogram() = default;
  explicit Histogram(size_t total_bins) : bins_(total_bins) {}

  size_t size() const { return bins_.size(); }
  const GradPair& bin(size_t i) const { return bins_[i]; }
  GradPair& bin(size_t i) { return bins_[i]; }

  /// Accumulates the gradient statistics of `instances` by scanning their
  /// nonzero (feature, bin) entries.
  static Histogram Build(const BinnedMatrix& x, const FeatureLayout& layout,
                         const std::vector<uint32_t>& instances,
                         const std::vector<GradPair>& grads);

  /// Sibling derivation: this := parent - this (paper §7 mentions the
  /// histogram-subtraction technique as a reason for layer-wise growth).
  void SubtractFrom(const Histogram& parent);

  /// Sum over one feature's bins (equals the node total minus that
  /// feature's missing statistics).
  GradPair FeatureSum(const FeatureLayout& layout, uint32_t f) const;

 private:
  std::vector<GradPair> bins_;
};

}  // namespace vf2boost

#endif  // VF2BOOST_GBDT_HISTOGRAM_H_
