#include "gbdt/model_io.h"

#include <fstream>
#include <sstream>

namespace vf2boost {

namespace {
constexpr char kMagic[] = "vf2boost-model-v1";
}  // namespace

std::string ModelToString(const GbdtModel& model) {
  std::ostringstream out;
  out.precision(17);
  out << kMagic << '\n';
  out << "objective " << model.params.objective << '\n';
  out << "learning_rate " << model.params.learning_rate << '\n';
  out << "base_score " << model.base_score << '\n';
  out << "num_trees " << model.trees.size() << '\n';
  for (const Tree& tree : model.trees) {
    out << "tree " << tree.size() << '\n';
    for (size_t i = 0; i < tree.size(); ++i) {
      const TreeNode& n = tree.node(static_cast<int32_t>(i));
      out << n.left << ' ' << n.right << ' ' << n.feature << ' '
          << n.split_value << ' ' << n.split_bin << ' '
          << (n.default_left ? 1 : 0) << ' ' << n.owner_party << ' '
          << n.weight << ' ' << n.gain << '\n';
    }
  }
  return out.str();
}

Result<GbdtModel> ModelFromString(const std::string& text) {
  std::istringstream in(text);
  std::string token;
  if (!std::getline(in, token) || token != kMagic) {
    return Status::Corruption("bad model header");
  }
  GbdtModel model;
  size_t num_trees = 0;
  if (!(in >> token >> model.params.objective) || token != "objective") {
    return Status::Corruption("missing objective");
  }
  if (!(in >> token >> model.params.learning_rate) ||
      token != "learning_rate") {
    return Status::Corruption("missing learning_rate");
  }
  if (!(in >> token >> model.base_score) || token != "base_score") {
    return Status::Corruption("missing base_score");
  }
  if (!(in >> token >> num_trees) || token != "num_trees") {
    return Status::Corruption("missing num_trees");
  }
  model.trees.reserve(num_trees);
  for (size_t t = 0; t < num_trees; ++t) {
    size_t num_nodes = 0;
    if (!(in >> token >> num_nodes) || token != "tree" || num_nodes == 0) {
      return Status::Corruption("bad tree header at tree " +
                                std::to_string(t));
    }
    Tree tree;
    while (tree.size() < num_nodes) tree.AddNode();
    for (size_t i = 0; i < num_nodes; ++i) {
      TreeNode& n = tree.node(static_cast<int32_t>(i));
      int default_left = 0;
      if (!(in >> n.left >> n.right >> n.feature >> n.split_value >>
            n.split_bin >> default_left >> n.owner_party >> n.weight >>
            n.gain)) {
        return Status::Corruption("truncated node at tree " +
                                  std::to_string(t));
      }
      // Structural safety: a node is either a leaf (both children -1) or an
      // internal node whose children come strictly after it (our trainers
      // append children, which also rules out cycles).
      const bool leaf = n.left < 0 && n.right < 0;
      const bool internal = n.left > static_cast<int32_t>(i) &&
                            n.right > static_cast<int32_t>(i) &&
                            n.left < static_cast<int32_t>(num_nodes) &&
                            n.right < static_cast<int32_t>(num_nodes);
      if (!leaf && !internal) {
        return Status::Corruption("malformed node links at tree " +
                                  std::to_string(t));
      }
      n.default_left = default_left != 0;
    }
    model.trees.push_back(std::move(tree));
  }
  return model;
}

Status SaveModel(const GbdtModel& model, const std::string& path) {
  std::ofstream out(path);
  if (!out) return Status::IOError("cannot open " + path + " for writing");
  out << ModelToString(model);
  return out.good() ? Status::OK() : Status::IOError("write failed: " + path);
}

Result<GbdtModel> LoadModel(const std::string& path) {
  std::ifstream in(path);
  if (!in) return Status::IOError("cannot open " + path);
  std::ostringstream ss;
  ss << in.rdbuf();
  return ModelFromString(ss.str());
}

}  // namespace vf2boost
