#ifndef VF2BOOST_GBDT_LOSS_H_
#define VF2BOOST_GBDT_LOSS_H_

#include <memory>
#include <string>
#include <vector>

#include "common/result.h"
#include "gbdt/types.h"

namespace vf2boost {

/// \brief Twice-differentiable loss over (raw score, label).
class Loss {
 public:
  virtual ~Loss() = default;

  /// First and second derivative of the loss at the current raw score.
  virtual GradPair GradHess(double score, float label) const = 0;
  /// Loss value (for logging).
  virtual double Value(double score, float label) const = 0;
  /// Upper bound on |g| — the paper's `Bound` used by histogram packing to
  /// shift bins nonnegative (§5.2).
  virtual double GradientBound() const = 0;
  /// Upper bound on h.
  virtual double HessianBound() const = 0;

  /// Fills `out` with GradHess for every instance. When `weights` is
  /// non-null and non-empty, each instance's gradient AND hessian are
  /// scaled by its weight (the standard weighted-loss formulation).
  void Compute(const std::vector<double>& scores,
               const std::vector<float>& labels,
               std::vector<GradPair>* out,
               const std::vector<float>* weights = nullptr) const;
};

/// Logistic loss for binary classification: g = sigmoid(s) - y, h = p(1-p).
class LogisticLoss : public Loss {
 public:
  GradPair GradHess(double score, float label) const override;
  double Value(double score, float label) const override;
  double GradientBound() const override { return 1.0; }
  double HessianBound() const override { return 0.25; }
};

/// Squared error: g = s - y, h = 1. The gradient bound assumes labels and
/// scores within [-bound/2, bound/2]; configurable.
class SquaredLoss : public Loss {
 public:
  explicit SquaredLoss(double grad_bound = 1024.0) : grad_bound_(grad_bound) {}

  GradPair GradHess(double score, float label) const override;
  double Value(double score, float label) const override;
  double GradientBound() const override { return grad_bound_; }
  double HessianBound() const override { return 1.0; }

 private:
  double grad_bound_;
};

/// Factory by objective name ("logistic", "squared").
Result<std::unique_ptr<Loss>> MakeLoss(const std::string& objective);

}  // namespace vf2boost

#endif  // VF2BOOST_GBDT_LOSS_H_
