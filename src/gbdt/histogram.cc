#include "gbdt/histogram.h"

#include "common/logging.h"

namespace vf2boost {

FeatureLayout FeatureLayout::FromCuts(const BinCuts& cuts) {
  FeatureLayout layout;
  layout.offsets.reserve(cuts.num_features() + 1);
  uint32_t off = 0;
  layout.offsets.push_back(0);
  for (size_t f = 0; f < cuts.num_features(); ++f) {
    off += static_cast<uint32_t>(cuts.NumBins(static_cast<uint32_t>(f)));
    layout.offsets.push_back(off);
  }
  return layout;
}

Histogram Histogram::Build(const BinnedMatrix& x, const FeatureLayout& layout,
                           const std::vector<uint32_t>& instances,
                           const std::vector<GradPair>& grads) {
  Histogram hist(layout.total_bins());
  for (uint32_t i : instances) {
    const GradPair& gp = grads[i];
    const auto cols = x.RowColumns(i);
    const auto bins = x.RowBins(i);
    for (size_t k = 0; k < cols.size(); ++k) {
      hist.bins_[layout.Flat(cols[k], bins[k])] += gp;
    }
  }
  return hist;
}

void Histogram::SubtractFrom(const Histogram& parent) {
  VF2_CHECK(bins_.size() == parent.bins_.size());
  for (size_t i = 0; i < bins_.size(); ++i) {
    GradPair v = parent.bins_[i];
    v -= bins_[i];
    bins_[i] = v;
  }
}

GradPair Histogram::FeatureSum(const FeatureLayout& layout, uint32_t f) const {
  GradPair sum;
  for (size_t i = layout.offsets[f]; i < layout.offsets[f + 1]; ++i) {
    sum += bins_[i];
  }
  return sum;
}

}  // namespace vf2boost
