#ifndef VF2BOOST_GBDT_MODEL_IO_H_
#define VF2BOOST_GBDT_MODEL_IO_H_

#include <string>

#include "common/result.h"
#include "gbdt/tree.h"

namespace vf2boost {

/// Serializes a model to a line-oriented text format (stable across
/// versions; documented in the string itself via a header line).
std::string ModelToString(const GbdtModel& model);

/// Parses a model produced by ModelToString.
Result<GbdtModel> ModelFromString(const std::string& text);

/// File variants.
Status SaveModel(const GbdtModel& model, const std::string& path);
Result<GbdtModel> LoadModel(const std::string& path);

}  // namespace vf2boost

#endif  // VF2BOOST_GBDT_MODEL_IO_H_
