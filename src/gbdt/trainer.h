#ifndef VF2BOOST_GBDT_TRAINER_H_
#define VF2BOOST_GBDT_TRAINER_H_

#include <vector>

#include "common/result.h"
#include "data/binning.h"
#include "data/dataset.h"
#include "gbdt/tree.h"
#include "gbdt/types.h"

namespace vf2boost {

/// Per-tree training telemetry (drives the convergence plots of Fig. 10).
struct EvalRecord {
  size_t tree_index = 0;
  double train_loss = 0;
  double valid_loss = 0;
  double valid_auc = 0;
  /// Wall-clock seconds from training start to the end of this tree.
  double elapsed_seconds = 0;
};

/// Routes `instances` of a node into left/right children according to a
/// split. Shared by the plain trainer and both federated party engines —
/// the parties must agree bit-for-bit on placement semantics.
void PartitionInstances(const BinnedMatrix& x,
                        const std::vector<uint32_t>& instances,
                        uint32_t feature, uint32_t bin, bool default_left,
                        std::vector<uint32_t>* left,
                        std::vector<uint32_t>* right);

/// \brief Plain (non-federated) histogram-based GBDT trainer.
///
/// Layer-wise growth with sibling histogram subtraction. This is the
/// XGBoost stand-in baseline of the end-to-end evaluation, and the reference
/// the federated engines are checked against for model equivalence.
class GbdtTrainer {
 public:
  explicit GbdtTrainer(const GbdtParams& params) : params_(params) {}

  /// Trains on `train`; if `valid`/`log` are given, records per-tree
  /// train/validation metrics.
  Result<GbdtModel> Train(const Dataset& train, const Dataset* valid = nullptr,
                          std::vector<EvalRecord>* log = nullptr) const;

 private:
  GbdtParams params_;
};

}  // namespace vf2boost

#endif  // VF2BOOST_GBDT_TRAINER_H_
