#ifndef VF2BOOST_GBDT_IMPORTANCE_H_
#define VF2BOOST_GBDT_IMPORTANCE_H_

#include <vector>

#include "gbdt/tree.h"

namespace vf2boost {

enum class ImportanceType {
  kGain,       ///< total loss reduction contributed by each feature
  kFrequency,  ///< number of splits using each feature
};

/// Per-feature importance over all trees. `num_features` sizes the result
/// (features never split score 0). Requires a joint model (global feature
/// ids, i.e. owner_party < 0 on every split node).
std::vector<double> FeatureImportance(const GbdtModel& model,
                                      size_t num_features,
                                      ImportanceType type);

/// Indices of the top-k most important features, descending.
std::vector<size_t> TopFeatures(const std::vector<double>& importance,
                                size_t k);

}  // namespace vf2boost

#endif  // VF2BOOST_GBDT_IMPORTANCE_H_
