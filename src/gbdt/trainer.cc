#include "gbdt/trainer.h"

#include <algorithm>
#include <limits>
#include <numeric>

#include "common/logging.h"
#include "common/timer.h"
#include "gbdt/loss.h"
#include "gbdt/split.h"
#include "metrics/metrics.h"

namespace vf2boost {

void PartitionInstances(const BinnedMatrix& x,
                        const std::vector<uint32_t>& instances,
                        uint32_t feature, uint32_t bin, bool default_left,
                        std::vector<uint32_t>* left,
                        std::vector<uint32_t>* right) {
  left->clear();
  right->clear();
  for (uint32_t i : instances) {
    const auto cols = x.RowColumns(i);
    const auto it = std::lower_bound(cols.begin(), cols.end(), feature);
    bool go_left;
    if (it == cols.end() || *it != feature) {
      go_left = default_left;
    } else {
      const size_t k = static_cast<size_t>(it - cols.begin());
      go_left = x.RowBins(i)[k] <= bin;
    }
    (go_left ? left : right)->push_back(i);
  }
}

namespace {

// State of one node while its layer is processed.
struct ActiveNode {
  int32_t id = 0;
  std::vector<uint32_t> instances;
  GradPair total;
  Histogram hist;
};

GradPair SumGrads(const std::vector<GradPair>& grads,
                  const std::vector<uint32_t>& instances) {
  GradPair total;
  for (uint32_t i : instances) total += grads[i];
  return total;
}

}  // namespace

Result<GbdtModel> GbdtTrainer::Train(const Dataset& train, const Dataset* valid,
                                     std::vector<EvalRecord>* log) const {
  if (!train.has_labels()) {
    return Status::InvalidArgument("training data has no labels");
  }
  if (params_.num_layers < 1) {
    return Status::InvalidArgument("num_layers must be >= 1");
  }
  auto loss_or = MakeLoss(params_.objective);
  VF2_RETURN_IF_ERROR(loss_or.status());
  const Loss& loss = *loss_or.value();

  const BinCuts cuts = ComputeBinCuts(train.features, params_.max_bins);
  const BinnedMatrix binned = BinnedMatrix::FromCsr(train.features, cuts);
  const FeatureLayout layout = FeatureLayout::FromCuts(cuts);

  GbdtModel model;
  model.params = params_;
  model.base_score = 0;

  const size_t n = train.rows();
  std::vector<double> scores(n, model.base_score);
  std::vector<GradPair> grads;
  Stopwatch clock;
  Rng sampler(params_.seed);
  const bool row_sampling = params_.row_subsample < 1.0;
  const bool col_sampling = params_.col_subsample < 1.0;
  double best_valid_loss = std::numeric_limits<double>::infinity();
  size_t rounds_since_best = 0;

  for (size_t t = 0; t < params_.num_trees; ++t) {
    loss.Compute(scores, train.labels, &grads,
                 train.has_weights() ? &train.weights : nullptr);

    // Row subsampling: the tree is grown on a per-tree instance sample.
    std::vector<uint32_t> root_instances;
    root_instances.reserve(n);
    for (size_t i = 0; i < n; ++i) {
      if (!row_sampling || sampler.NextDouble() < params_.row_subsample) {
        root_instances.push_back(static_cast<uint32_t>(i));
      }
    }
    if (root_instances.empty()) root_instances.push_back(0);

    // Column subsampling: a per-tree feature mask.
    std::vector<uint8_t> allowed(layout.num_features(), 1);
    if (col_sampling) {
      size_t kept = 0;
      for (auto& a : allowed) {
        a = sampler.NextDouble() < params_.col_subsample ? 1 : 0;
        kept += a;
      }
      if (kept == 0) allowed[sampler.NextBounded(allowed.size())] = 1;
    }
    const std::vector<uint8_t>* mask = col_sampling ? &allowed : nullptr;

    Tree tree;
    std::vector<ActiveNode> active(1);
    active[0].id = 0;
    active[0].instances = std::move(root_instances);
    active[0].total = SumGrads(grads, active[0].instances);
    active[0].hist =
        Histogram::Build(binned, layout, active[0].instances, grads);

    auto make_leaf = [&](ActiveNode& node) {
      const double w = LeafWeight(node.total, params_);
      tree.node(node.id).weight = w;
      if (row_sampling) return;  // scores refreshed via Predict below
      for (uint32_t i : node.instances) {
        scores[i] += params_.learning_rate * w;
      }
    };

    for (size_t layer = 0; layer + 1 < params_.num_layers && !active.empty();
         ++layer) {
      std::vector<ActiveNode> next;
      for (ActiveNode& node : active) {
        const SplitCandidate split =
            FindBestSplit(node.hist, layout, node.total, params_, mask);
        if (!split.valid()) {
          make_leaf(node);
          continue;
        }
        ActiveNode left_child, right_child;
        PartitionInstances(binned, node.instances, split.feature, split.bin,
                           split.default_left, &left_child.instances,
                           &right_child.instances);

        // AddNode may reallocate the node array; fetch references only
        // after both children exist.
        const int32_t left_id = tree.AddNode();
        const int32_t right_id = tree.AddNode();
        TreeNode& tn = tree.node(node.id);
        tn.feature = split.feature;
        tn.split_value = cuts.SplitValue(split.feature, split.bin);
        tn.split_bin = split.bin;
        tn.default_left = split.default_left;
        tn.gain = split.gain;
        tn.left = left_id;
        tn.right = right_id;
        left_child.id = left_id;
        right_child.id = right_id;
        left_child.total = split.left_sum;
        right_child.total = split.right_sum;

        // Sibling subtraction: build the smaller child, derive the other.
        ActiveNode* small = &left_child;
        ActiveNode* big = &right_child;
        if (small->instances.size() > big->instances.size()) {
          std::swap(small, big);
        }
        small->hist =
            Histogram::Build(binned, layout, small->instances, grads);
        big->hist = small->hist;  // copy, then invert against the parent
        big->hist.SubtractFrom(node.hist);

        next.push_back(std::move(left_child));
        next.push_back(std::move(right_child));
      }
      active = std::move(next);
    }
    // Whatever is still active at the last layer becomes leaves.
    for (ActiveNode& node : active) make_leaf(node);

    if (row_sampling) {
      // Under subsampling, out-of-sample instances also need their scores
      // advanced: refresh via a full prediction pass over the new tree.
      for (size_t i = 0; i < n; ++i) {
        scores[i] += params_.learning_rate * tree.Predict(train.features, i);
      }
    }
    model.trees.push_back(std::move(tree));

    const bool want_valid =
        valid != nullptr && valid->has_labels() &&
        (log != nullptr || params_.early_stopping_rounds > 0);
    double valid_loss = 0, valid_auc = 0;
    if (want_valid) {
      const std::vector<double> vs = model.PredictRaw(valid->features);
      valid_loss = params_.objective == "squared" ? Rmse(vs, valid->labels)
                                                  : LogLoss(vs, valid->labels);
      valid_auc = Auc(vs, valid->labels);
    }
    if (log != nullptr) {
      EvalRecord rec;
      rec.tree_index = t;
      rec.elapsed_seconds = clock.ElapsedSeconds();
      double total = 0;
      for (size_t i = 0; i < n; ++i) {
        total += loss.Value(scores[i], train.labels[i]);
      }
      rec.train_loss = total / static_cast<double>(n);
      rec.valid_loss = valid_loss;
      rec.valid_auc = valid_auc;
      log->push_back(rec);
    }
    if (want_valid && params_.early_stopping_rounds > 0) {
      if (valid_loss < best_valid_loss - 1e-12) {
        best_valid_loss = valid_loss;
        rounds_since_best = 0;
      } else if (++rounds_since_best >= params_.early_stopping_rounds) {
        break;  // model keeps the trees built so far
      }
    }
  }
  return model;
}

}  // namespace vf2boost
