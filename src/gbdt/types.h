#ifndef VF2BOOST_GBDT_TYPES_H_
#define VF2BOOST_GBDT_TYPES_H_

#include <cstddef>
#include <cstdint>
#include <string>

namespace vf2boost {

/// Gradient/hessian pair (the paper's g_i, h_i).
struct GradPair {
  double g = 0;
  double h = 0;

  GradPair& operator+=(const GradPair& o) {
    g += o.g;
    h += o.h;
    return *this;
  }
  GradPair& operator-=(const GradPair& o) {
    g -= o.g;
    h -= o.h;
    return *this;
  }
  friend GradPair operator+(GradPair a, const GradPair& b) { return a += b; }
  friend GradPair operator-(GradPair a, const GradPair& b) { return a -= b; }
};

/// Hyper-parameters shared by the plain and federated trainers. Defaults
/// match the paper's protocol (§6.1): T = 20 trees, eta = 0.1, L = 7 tree
/// layers, s = 20 histogram bins.
struct GbdtParams {
  size_t num_trees = 20;
  double learning_rate = 0.1;
  /// Number of tree layers L; splits happen on layers 0..L-2, leaves live no
  /// deeper than layer L-1.
  size_t num_layers = 7;
  /// Histogram bins per feature (s).
  size_t max_bins = 20;
  /// L2 regularization on leaf weights (lambda).
  double l2_reg = 1.0;
  /// L1 regularization (alpha): soft-thresholds leaf gradients. The paper
  /// (§5.2) notes L1 can bound gradients for histogram packing.
  double l1_reg = 0.0;
  /// Minimum loss reduction to split (gamma).
  double min_split_gain = 0.0;
  /// Minimum hessian sum on each child.
  double min_child_weight = 1e-3;
  /// "logistic" (binary classification) or "squared" (regression).
  std::string objective = "logistic";
  /// Fraction of instances sampled (without replacement) per tree.
  double row_subsample = 1.0;
  /// Fraction of features considered per tree.
  double col_subsample = 1.0;
  /// Stop when validation loss has not improved for this many trees
  /// (0 = off; requires a validation set).
  size_t early_stopping_rounds = 0;
  /// Seed for subsampling.
  uint64_t seed = 17;
};

}  // namespace vf2boost

#endif  // VF2BOOST_GBDT_TYPES_H_
