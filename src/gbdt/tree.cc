#include "gbdt/tree.h"

#include <cmath>
#include <functional>

#include "common/logging.h"

namespace vf2boost {

size_t Tree::NumLeaves() const {
  size_t leaves = 0;
  for (const TreeNode& n : nodes_) {
    if (n.is_leaf()) ++leaves;
  }
  return leaves;
}

size_t Tree::Depth() const {
  std::function<size_t(int32_t)> depth = [&](int32_t i) -> size_t {
    const TreeNode& n = nodes_[i];
    if (n.is_leaf()) return 0;
    return 1 + std::max(depth(n.left), depth(n.right));
  };
  return depth(0);
}

int32_t Tree::PredictLeaf(const CsrMatrix& x, size_t row) const {
  int32_t cur = 0;
  while (!nodes_[cur].is_leaf()) {
    const TreeNode& n = nodes_[cur];
    VF2_DCHECK(n.owner_party < 0);
    const float v = x.At(row, n.feature);
    bool go_left;
    if (v == 0.0f) {
      go_left = n.default_left;
    } else {
      go_left = v < n.split_value;
    }
    cur = go_left ? n.left : n.right;
  }
  return cur;
}

double Tree::Predict(const CsrMatrix& x, size_t row) const {
  return nodes_[PredictLeaf(x, row)].weight;
}

std::vector<double> GbdtModel::PredictRaw(const CsrMatrix& x,
                                          size_t num_trees) const {
  if (num_trees == 0 || num_trees > trees.size()) num_trees = trees.size();
  std::vector<double> scores(x.rows(), base_score);
  for (size_t t = 0; t < num_trees; ++t) {
    for (size_t r = 0; r < x.rows(); ++r) {
      scores[r] += params.learning_rate * trees[t].Predict(x, r);
    }
  }
  return scores;
}

std::vector<double> GbdtModel::PredictProba(const CsrMatrix& x) const {
  std::vector<double> scores = PredictRaw(x);
  for (double& s : scores) s = 1.0 / (1.0 + std::exp(-s));
  return scores;
}

std::vector<std::vector<int32_t>> GbdtModel::PredictLeaves(
    const CsrMatrix& x) const {
  std::vector<std::vector<int32_t>> out(x.rows());
  for (size_t r = 0; r < x.rows(); ++r) {
    out[r].reserve(trees.size());
    for (const Tree& tree : trees) {
      out[r].push_back(tree.PredictLeaf(x, r));
    }
  }
  return out;
}

}  // namespace vf2boost
