#include "gbdt/split.h"

namespace vf2boost {

namespace {

// XGBoost-style soft threshold: the effective gradient after L1.
double ThresholdedGrad(double g, double alpha) {
  if (g > alpha) return g - alpha;
  if (g < -alpha) return g + alpha;
  return 0.0;
}

}  // namespace

double LeafWeight(const GradPair& sum, const GbdtParams& params) {
  return -ThresholdedGrad(sum.g, params.l1_reg) / (sum.h + params.l2_reg);
}

double SplitGain(const GradPair& left, const GradPair& right,
                 const GradPair& total, const GbdtParams& params) {
  auto score = [&params](const GradPair& gp) {
    const double g = ThresholdedGrad(gp.g, params.l1_reg);
    return g * g / (gp.h + params.l2_reg);
  };
  return 0.5 * (score(left) + score(right) - score(total)) -
         params.min_split_gain;
}

SplitCandidate FindBestSplit(const Histogram& hist,
                             const FeatureLayout& layout,
                             const GradPair& total, const GbdtParams& params,
                             const std::vector<uint8_t>* allowed_features) {
  SplitCandidate best;
  for (uint32_t f = 0; f < layout.num_features(); ++f) {
    if (allowed_features != nullptr && !(*allowed_features)[f]) continue;
    const size_t nbins = layout.NumBins(f);
    if (nbins < 2) continue;
    // Missing statistics: instances on this node whose feature f is zero.
    const GradPair feature_sum = hist.FeatureSum(layout, f);
    const GradPair missing = total - feature_sum;

    GradPair prefix;
    // Split after bin k: nonzero-left = bins [0..k]. The last bin is not a
    // split (empty right side).
    for (uint32_t k = 0; k + 1 < nbins; ++k) {
      prefix += hist.bin(layout.Flat(f, k));
      for (const bool default_left : {true, false}) {
        GradPair left = prefix;
        if (default_left) left += missing;
        const GradPair right = total - left;
        if (left.h < params.min_child_weight ||
            right.h < params.min_child_weight) {
          continue;
        }
        const double gain = SplitGain(left, right, total, params);
        if (gain > best.gain) {
          best.gain = gain;
          best.feature = f;
          best.bin = k;
          best.default_left = default_left;
          best.left_sum = left;
          best.right_sum = right;
        }
      }
    }
  }
  return best;
}

}  // namespace vf2boost
