#ifndef VF2BOOST_GBDT_TREE_H_
#define VF2BOOST_GBDT_TREE_H_

#include <cstdint>
#include <vector>

#include "data/matrix.h"
#include "gbdt/types.h"

namespace vf2boost {

/// \brief One decision-tree node.
///
/// Plain (non-federated) models set owner_party = -1 and use `feature` as a
/// global column id. Federated models set owner_party to the party that owns
/// the split and `feature` to that party's local column id; our evaluation
/// harness maps these back to global ids via the VerticalSplitSpec (a real
/// deployment would instead evaluate each node inside its owner party —
/// paper §3.2, "only one party knows the actual split information").
struct TreeNode {
  int32_t left = -1;   ///< child index; -1 on leaves
  int32_t right = -1;
  uint32_t feature = 0;
  float split_value = 0;
  /// Split candidate bin (federated nodes are decided at bin granularity —
  /// split_value is only recoverable by the owner party's cuts).
  uint32_t split_bin = 0;
  bool default_left = true;
  int32_t owner_party = -1;
  double weight = 0;  ///< leaf value
  double gain = 0;    ///< loss reduction of this split (0 on leaves)

  bool is_leaf() const { return left < 0; }
};

/// \brief A decision tree stored as a flat node array (node 0 is the root).
class Tree {
 public:
  Tree() { nodes_.emplace_back(); }

  int32_t AddNode() {
    nodes_.emplace_back();
    return static_cast<int32_t>(nodes_.size()) - 1;
  }

  size_t size() const { return nodes_.size(); }
  TreeNode& node(int32_t i) { return nodes_[i]; }
  const TreeNode& node(int32_t i) const { return nodes_[i]; }

  /// Number of leaves.
  size_t NumLeaves() const;
  /// Depth of the deepest leaf (root = 0).
  size_t Depth() const;

  /// Evaluates the tree on one row. Sparse-zero values follow the split's
  /// default direction (they were never binned during training). Requires a
  /// joint view where `feature` is a global column (owner_party == -1).
  double Predict(const CsrMatrix& x, size_t row) const;

  /// Index of the leaf the row lands in (same traversal as Predict).
  /// Leaf indices feed GBDT->LR stacking and model introspection.
  int32_t PredictLeaf(const CsrMatrix& x, size_t row) const;

 private:
  std::vector<TreeNode> nodes_;
};

/// \brief A trained GBDT model: ensemble of trees plus shrinkage.
struct GbdtModel {
  GbdtParams params;
  double base_score = 0;
  std::vector<Tree> trees;

  /// Raw scores (pre-sigmoid for logistic) of every row, using the first
  /// `num_trees` trees (0 = all).
  std::vector<double> PredictRaw(const CsrMatrix& x,
                                 size_t num_trees = 0) const;
  /// Sigmoid probabilities (logistic objective).
  std::vector<double> PredictProba(const CsrMatrix& x) const;

  /// Leaf index per (row, tree) — the classic GBDT feature transform
  /// (Facebook's GBDT+LR): each column is one tree's categorical leaf id.
  std::vector<std::vector<int32_t>> PredictLeaves(const CsrMatrix& x) const;
};

}  // namespace vf2boost

#endif  // VF2BOOST_GBDT_TREE_H_
