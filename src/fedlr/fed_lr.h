#ifndef VF2BOOST_FEDLR_FED_LR_H_
#define VF2BOOST_FEDLR_FED_LR_H_

#include <vector>

#include "data/partition.h"
#include "fed/protocol.h"
#include "fedlr/lr_model.h"

namespace vf2boost {

/// \brief Vertical federated logistic regression — the paper's stated
/// future work (§5.1/§5.2 Discussions): both of VF²Boost's cryptography
/// customizations carried over to LR.
///
/// Protocol (two parties, no third-party coordinator, after [84]):
/// each party holds its own Paillier key pair. Per mini-batch (the batch
/// schedule is derived from the shared seed, so no index exchange):
///
///   1. A -> B: [[0.25 * u_A,i]] under A's key;
///      B -> A: [[0.25 * u_B,i - 0.5 * yhat_i]] under B's key
///      (the Taylor-surrogate residual, linear in the score).
///   2. Each party completes the other's stream into the full residual
///      [[z_i]] by homomorphically adding its own plaintext term, then
///      accumulates its per-feature gradient Sum_i x_ij (x) [[z_i]] under
///      the PEER's key — this is exactly the cipher-summation workload the
///      re-ordered accumulation (§5.1) accelerates.
///   3. The gradients are additively masked, optionally packed (§5.2), and
///      sent to the peer for decryption; the peer returns the masked
///      plaintexts, and the owner unmasks and applies the update.
///
/// Leakage: each party sees only ciphertexts under keys it cannot open,
/// plus statistically masked gradient aggregates of the peer's features.
struct FedLrConfig {
  LrParams lr;
  size_t paillier_bits = 512;
  uint32_t codec_base = 16;
  int codec_min_exponent = 6;
  int codec_num_exponents = 4;
  bool mock_crypto = false;
  /// §5.1 re-ordered accumulation of the gradient cipher sums.
  bool reordered = true;
  /// §5.2 packing of the masked gradient ciphers (falls back to raw when
  /// fewer than min_pack_slots slots fit the key).
  bool packing = true;
  size_t min_pack_slots = 2;
  NetworkConfig network;
  uint64_t seed = 42;

  Status Validate() const;
};

struct FedLrResult {
  /// Party-local weight vectors (each party keeps its own in deployment).
  std::vector<double> weights_a;
  std::vector<double> weights_b;
  double bias = 0;  ///< lives with the label owner (B)
  FedStats stats;

  /// Joint evaluation view (harness only): weights mapped to global column
  /// ids per the training partition.
  Result<LrModel> ToJointModel(const VerticalSplitSpec& spec) const;
};

/// \brief Runs the two-party vertical LR protocol in-process (Party A on a
/// worker thread, Party B on the calling thread).
class FedLrTrainer {
 public:
  explicit FedLrTrainer(const FedLrConfig& config) : config_(config) {}

  /// party_a: features only; party_b: features + labels; rows aligned.
  Result<FedLrResult> Train(const Dataset& party_a,
                            const Dataset& party_b) const;

 private:
  FedLrConfig config_;
};

}  // namespace vf2boost

#endif  // VF2BOOST_FEDLR_FED_LR_H_
