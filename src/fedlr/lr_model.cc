#include "fedlr/lr_model.h"

#include <cmath>
#include <numeric>

#include "common/logging.h"
#include "common/random.h"

namespace vf2boost {

std::vector<double> LrModel::PredictRaw(const CsrMatrix& x) const {
  std::vector<double> scores(x.rows(), bias);
  for (size_t r = 0; r < x.rows(); ++r) {
    const auto cols = x.RowColumns(r);
    const auto vals = x.RowValues(r);
    for (size_t k = 0; k < cols.size(); ++k) {
      if (cols[k] < weights.size()) scores[r] += weights[cols[k]] * vals[k];
    }
  }
  return scores;
}

std::vector<double> LrModel::PredictProba(const CsrMatrix& x) const {
  std::vector<double> scores = PredictRaw(x);
  for (double& s : scores) s = 1.0 / (1.0 + std::exp(-s));
  return scores;
}

size_t LrBatchesPerEpoch(size_t n, const LrParams& params) {
  const size_t b = std::max<size_t>(1, params.batch_size);
  return (n + b - 1) / b;
}

std::vector<uint32_t> LrBatchIndices(size_t n, const LrParams& params,
                                     size_t epoch, size_t batch) {
  // A per-epoch Fisher-Yates shuffle seeded by (seed, epoch): both parties
  // replay it identically.
  std::vector<uint32_t> order(n);
  std::iota(order.begin(), order.end(), 0);
  Rng rng(params.seed * 1000003 + epoch);
  for (size_t i = n; i > 1; --i) {
    std::swap(order[i - 1], order[rng.NextBounded(i)]);
  }
  const size_t b = std::max<size_t>(1, params.batch_size);
  const size_t begin = batch * b;
  const size_t end = std::min(n, begin + b);
  VF2_CHECK(begin < n) << "batch index out of range";
  return std::vector<uint32_t>(order.begin() + begin, order.begin() + end);
}

Result<LrModel> PlainLrTrainer::Train(const Dataset& train) const {
  if (!train.has_labels()) {
    return Status::InvalidArgument("training data has no labels");
  }
  if (train.rows() == 0) {
    return Status::InvalidArgument("empty training data");
  }
  const size_t n = train.rows();
  LrModel model;
  model.weights.assign(train.columns(), 0.0);

  for (size_t epoch = 0; epoch < params_.epochs; ++epoch) {
    const size_t batches = LrBatchesPerEpoch(n, params_);
    for (size_t b = 0; b < batches; ++b) {
      const std::vector<uint32_t> batch =
          LrBatchIndices(n, params_, epoch, b);
      std::vector<double> grad(train.columns(), 0.0);
      double grad_bias = 0;
      for (uint32_t i : batch) {
        double u = model.bias;
        const auto cols = train.features.RowColumns(i);
        const auto vals = train.features.RowValues(i);
        for (size_t k = 0; k < cols.size(); ++k) {
          u += model.weights[cols[k]] * vals[k];
        }
        double z;
        if (params_.taylor) {
          const double yhat = train.labels[i] > 0.5f ? 1.0 : -1.0;
          z = 0.25 * u - 0.5 * yhat;
        } else {
          z = 1.0 / (1.0 + std::exp(-u)) - train.labels[i];
        }
        for (size_t k = 0; k < cols.size(); ++k) {
          grad[cols[k]] += z * vals[k];
        }
        grad_bias += z;
      }
      const double m = static_cast<double>(batch.size());
      for (size_t j = 0; j < model.weights.size(); ++j) {
        model.weights[j] -= params_.learning_rate *
                            (grad[j] / m + params_.l2_reg * model.weights[j]);
      }
      model.bias -= params_.learning_rate * grad_bias / m;
    }
  }
  return model;
}

}  // namespace vf2boost
