#ifndef VF2BOOST_FEDLR_LR_MODEL_H_
#define VF2BOOST_FEDLR_LR_MODEL_H_

#include <vector>

#include "common/result.h"
#include "data/dataset.h"

namespace vf2boost {

/// \brief Linear model: raw score = w . x + b.
struct LrModel {
  std::vector<double> weights;
  double bias = 0;

  std::vector<double> PredictRaw(const CsrMatrix& x) const;
  std::vector<double> PredictProba(const CsrMatrix& x) const;
};

/// Hyper-parameters shared by the plain and federated LR trainers.
struct LrParams {
  size_t epochs = 10;
  size_t batch_size = 256;
  double learning_rate = 0.1;
  double l2_reg = 0.0;
  /// Use the order-2 Taylor surrogate gradient z_i = 0.25*u_i - 0.5*yhat_i
  /// (yhat in {-1,+1}) instead of the exact logistic gradient. This is the
  /// standard trick (Hardy et al. '17) that makes the gradient a LINEAR
  /// function of the score — and therefore computable under additive HE.
  /// The federated trainer always uses it; enable it here to compare
  /// apples to apples.
  bool taylor = false;
  uint64_t seed = 1;
};

/// \brief Centralized mini-batch logistic regression — the reference the
/// federated protocol is checked against (with `taylor = true` and the same
/// seed/batching, the two produce near-identical weights).
class PlainLrTrainer {
 public:
  explicit PlainLrTrainer(const LrParams& params) : params_(params) {}

  Result<LrModel> Train(const Dataset& train) const;

 private:
  LrParams params_;
};

/// The shared deterministic batch schedule: both federated parties (and the
/// reference trainer) derive identical batches from the seed without
/// communicating. Returns instance indices of batch `b` in epoch `e`.
std::vector<uint32_t> LrBatchIndices(size_t n, const LrParams& params,
                                     size_t epoch, size_t batch);
/// Number of batches per epoch.
size_t LrBatchesPerEpoch(size_t n, const LrParams& params);

}  // namespace vf2boost

#endif  // VF2BOOST_FEDLR_LR_MODEL_H_
