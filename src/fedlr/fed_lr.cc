#include "fedlr/fed_lr.h"

#include <cmath>
#include <thread>

#include "common/logging.h"
#include "crypto/accumulator.h"
#include "crypto/packing.h"
#include "fed/inbox.h"

namespace vf2boost {

namespace {

// Fixed encoding exponent for the plaintext feature multipliers in
// x_ij (x) [[z_i]] — the product cipher then carries exponent
// e_z + kFeatureExponent.
constexpr int kFeatureExponent = 6;

// Statistical masking: masks are uniform in [bound, bound * (1 + 2^20)),
// hiding the true gradient to ~2^-20 while keeping slot values positive.
constexpr double kMaskRange = 1 << 20;

// Multiplies a cipher by a NONNEGATIVE plaintext scalar encoded at
// kFeatureExponent.
Cipher SMulFixed(const CipherBackend& backend, double k, const Cipher& c) {
  VF2_DCHECK(k >= 0);
  Cipher out;
  out.exponent = c.exponent + kFeatureExponent;
  const BigInt encoded =
      backend.codec().Encode(k, kFeatureExponent, backend.plain_modulus());
  out.data = backend.SMulRaw(encoded, c.data);
  return out;
}

// One party's gradient-request bundle: pos/neg part ciphers per feature
// (split by the sign of x to avoid per-entry homomorphic negation), the
// masks to subtract after the peer's decryption, and packing metadata.
struct GradRequest {
  std::vector<Cipher> ciphers;        // raw form (2 per feature: pos, neg)
  std::vector<PackedCipher> packs;    // packed form
  bool packed = false;
  std::vector<double> masks;          // one per cipher slot
};

Message EncodeGradRequest(const GradRequest& req, const CipherBackend& peer) {
  ByteWriter w;
  w.PutU8(req.packed ? 1 : 0);
  if (req.packed) {
    w.PutU64(req.packs.size());
    for (const PackedCipher& pc : req.packs) {
      w.PutI32(pc.exponent);
      w.PutU32(pc.slot_bits);
      w.PutU32(pc.num_slots);
      w.PutU64Vector(pc.data.limbs());
    }
  } else {
    PutCipherVector(req.ciphers, peer, &w);
  }
  return {MessageType::kLrGradRequest, w.Release()};
}

Status DecodeGradRequest(const Message& m, const CipherBackend& peer,
                         GradRequest* req) {
  ByteReader r(m.payload);
  uint8_t packed = 0;
  VF2_RETURN_IF_ERROR(r.GetU8(&packed));
  req->packed = packed != 0;
  if (req->packed) {
    uint64_t n = 0;
    VF2_RETURN_IF_ERROR(r.GetU64(&n));
    if (n > r.remaining() / 20) {
      return Status::Corruption("grad request pack count exceeds payload");
    }
    req->packs.clear();
    for (uint64_t i = 0; i < n; ++i) {
      PackedCipher pc;
      VF2_RETURN_IF_ERROR(r.GetI32(&pc.exponent));
      VF2_RETURN_IF_ERROR(r.GetU32(&pc.slot_bits));
      VF2_RETURN_IF_ERROR(r.GetU32(&pc.num_slots));
      std::vector<uint64_t> limbs;
      VF2_RETURN_IF_ERROR(r.GetU64Vector(&limbs));
      pc.data = BigInt::FromLimbs(std::move(limbs));
      req->packs.push_back(std::move(pc));
    }
    return Status::OK();
  }
  return GetCipherVector(&r, peer, &req->ciphers);
}

Message EncodeGradReply(const std::vector<double>& values) {
  ByteWriter w;
  w.PutU64(values.size());
  for (double v : values) w.PutDouble(v);
  return {MessageType::kLrGradReply, w.Release()};
}

Status DecodeGradReply(const Message& m, std::vector<double>* values) {
  ByteReader r(m.payload);
  uint64_t n = 0;
  VF2_RETURN_IF_ERROR(r.GetU64(&n));
  if (n > r.remaining() / 8) {
    return Status::Corruption("grad reply count exceeds payload");
  }
  values->resize(static_cast<size_t>(n));
  for (double& v : *values) {
    VF2_RETURN_IF_ERROR(r.GetDouble(&v));
  }
  return Status::OK();
}

/// One LR party. The two roles are symmetric except for who owns labels
/// (the label owner injects the -0.5*yhat term) and the bias column.
class LrPeer {
 public:
  LrPeer(const FedLrConfig& config, const Dataset& data, bool is_label_owner,
         ChannelEndpoint* channel, uint64_t rng_salt)
      : config_(config),
        data_(data),
        is_label_owner_(is_label_owner),
        inbox_(channel),
        rng_(config.seed * 31337 + rng_salt),
        weights_(data.columns(), 0.0) {}

  Status Run();

  const std::vector<double>& weights() const { return weights_; }
  double bias() const { return bias_; }
  const FedStats& stats() const { return stats_; }

 private:
  Status Setup();
  Status RunLoop();
  Status RunBatch(const std::vector<uint32_t>& batch);
  double PartialScore(uint32_t i) const;

  // Builds this party's masked-gradient request under the peer's key from
  // the completed residual ciphers `z` (aligned with `batch`).
  Status BuildGradRequest(const std::vector<uint32_t>& batch,
                          const std::vector<Cipher>& z, GradRequest* req);
  // Decrypts the peer's request with our own key.
  Status AnswerGradRequest(const GradRequest& req, std::vector<double>* out);
  // Applies the unmasked gradient.
  void ApplyUpdate(const GradRequest& req, const std::vector<double>& reply,
                   size_t batch_size);

  FedLrConfig config_;
  const Dataset& data_;
  bool is_label_owner_;
  Inbox inbox_;
  Rng rng_;

  std::unique_ptr<CipherBackend> own_;   // our key pair (can decrypt)
  std::unique_ptr<CipherBackend> peer_;  // peer's public key only
  std::vector<double> weights_;
  double bias_ = 0;
  FedStats stats_;
};

Status LrPeer::Setup() {
  const FixedPointCodec codec(config_.codec_base, config_.codec_min_exponent,
                              config_.codec_num_exponents);
  if (config_.mock_crypto) {
    own_ = std::make_unique<MockBackend>(codec);
    inbox_.Send(Message{MessageType::kPublicKey, {}});
    VF2_ASSIGN_OR_RETURN(Message msg,
                         inbox_.ReceiveType(MessageType::kPublicKey));
    (void)msg;
    peer_ = std::make_unique<MockBackend>(codec);
    return Status::OK();
  }
  auto kp = PaillierKeyPair::Generate(config_.paillier_bits, &rng_);
  VF2_RETURN_IF_ERROR(kp.status());
  auto own = std::make_unique<PaillierBackend>(kp->pub, codec);
  own->SetPrivateKey(kp->priv);
  own_ = std::move(own);

  ByteWriter w;
  kp->pub.Serialize(&w);
  inbox_.Send(Message{MessageType::kPublicKey, w.Release()});
  VF2_ASSIGN_OR_RETURN(Message msg,
                       inbox_.ReceiveType(MessageType::kPublicKey));
  ByteReader r(msg.payload);
  auto peer_pub = PaillierPublicKey::Deserialize(&r);
  VF2_RETURN_IF_ERROR(peer_pub.status());
  peer_ = std::make_unique<PaillierBackend>(std::move(peer_pub).value(),
                                            codec);
  return Status::OK();
}

double LrPeer::PartialScore(uint32_t i) const {
  double u = is_label_owner_ ? bias_ : 0.0;
  const auto cols = data_.features.RowColumns(i);
  const auto vals = data_.features.RowValues(i);
  for (size_t k = 0; k < cols.size(); ++k) {
    u += weights_[cols[k]] * vals[k];
  }
  return u;
}

Status LrPeer::BuildGradRequest(const std::vector<uint32_t>& batch,
                                const std::vector<Cipher>& z,
                                GradRequest* req) {
  // Two accumulators per feature (positive / negative x parts) plus, for
  // the label owner, the bias column (all-ones, positive part only).
  const size_t features = data_.columns();
  const size_t slots = 2 * features + (is_label_owner_ ? 1 : 0);

  // The product ciphers live at exponent e_z + kFeatureExponent; give the
  // accumulators a codec shifted accordingly.
  const FixedPointCodec shifted(config_.codec_base,
                                config_.codec_min_exponent + kFeatureExponent,
                                config_.codec_num_exponents);
  std::unique_ptr<CipherBackend> acc_backend;
  if (peer_->is_mock()) {
    acc_backend = std::make_unique<MockBackend>(shifted);
  } else {
    acc_backend = std::make_unique<PaillierBackend>(
        static_cast<const PaillierBackend*>(peer_.get())->public_key(),
        shifted);
  }

  std::vector<std::unique_ptr<CipherAccumulator>> acc(slots);
  for (auto& a : acc) {
    if (config_.reordered) {
      a = std::make_unique<ReorderedCipherAccumulator>(acc_backend.get());
    } else {
      a = std::make_unique<NaiveCipherAccumulator>(acc_backend.get());
    }
  }
  for (size_t k = 0; k < batch.size(); ++k) {
    const uint32_t i = batch[k];
    const auto cols = data_.features.RowColumns(i);
    const auto vals = data_.features.RowValues(i);
    for (size_t e = 0; e < cols.size(); ++e) {
      const double x = vals[e];
      const size_t slot = 2 * cols[e] + (x >= 0 ? 0 : 1);
      acc[slot]->Add(SMulFixed(*peer_, std::fabs(x), z[k]));
    }
    if (is_label_owner_) {
      // Bias column (all-ones); the x1.0 multiply lifts the cipher into the
      // shifted exponent range the accumulators expect.
      acc[2 * features]->Add(SMulFixed(*peer_, 1.0, z[k]));
    }
  }

  // Finalize to a uniform exponent, mask, and optionally pack.
  const int target_exponent =
      shifted.min_exponent() + shifted.num_exponents() - 1;
  req->ciphers.resize(slots);
  req->masks.resize(slots);
  double max_abs = 1.0;
  for (size_t s = 0; s < slots; ++s) {
    Cipher sum = acc[s]->Finalize();
    stats_.hadds += acc[s]->stats().hadds;
    stats_.scalings += acc[s]->stats().scalings;
    sum = acc_backend->ScaleTo(sum, target_exponent);
    // Mask: positive, statistically hiding, also serves as the nonneg shift.
    // Bound the slot value: |grad part| <= sum_i |x| * |z|; use a generous
    // protocol constant (documented in fed_lr.h).
    req->masks[s] = 1024.0 * (1.0 + rng_.NextDouble() * kMaskRange);
    const Cipher mask_cipher =
        acc_backend->EncryptAt(req->masks[s], target_exponent, &rng_);
    stats_.encryptions += 1;
    sum.data = acc_backend->HAddRaw(sum.data, mask_cipher.data);
    req->ciphers[s] = std::move(sum);
    max_abs = std::max(max_abs, req->masks[s]);
  }

  req->packed = false;
  if (config_.packing) {
    // Slot width: masked values are in (0, 2 * max_mask) with overwhelming
    // probability (gradients are tiny next to the 2^20-range masks).
    const double max_value =
        2.0 * max_abs *
        std::pow(static_cast<double>(config_.codec_base), target_exponent);
    const size_t slot_bits =
        static_cast<size_t>(std::ceil(std::log2(max_value))) + 2;
    const size_t capacity = MaxSlotsPerCipher(
        slot_bits, acc_backend->plain_modulus().BitLength());
    if (capacity >= std::max<size_t>(2, config_.min_pack_slots)) {
      for (size_t begin = 0; begin < req->ciphers.size();
           begin += capacity) {
        const size_t end = std::min(req->ciphers.size(), begin + capacity);
        std::vector<Cipher> group(req->ciphers.begin() + begin,
                                  req->ciphers.begin() + end);
        auto packed = PackCiphers(group, slot_bits, *acc_backend);
        VF2_RETURN_IF_ERROR(packed.status());
        req->packs.push_back(std::move(packed).value());
        stats_.packs += 1;
      }
      req->packed = true;
      req->ciphers.clear();
    }
  }
  return Status::OK();
}

Status LrPeer::AnswerGradRequest(const GradRequest& req,
                                 std::vector<double>* out) {
  out->clear();
  if (req.packed) {
    for (const PackedCipher& pc : req.packs) {
      auto slots = DecryptPacked(pc, *own_);
      VF2_RETURN_IF_ERROR(slots.status());
      out->insert(out->end(), slots->begin(), slots->end());
      stats_.decryptions += 1;
    }
  } else {
    for (const Cipher& c : req.ciphers) {
      out->push_back(own_->Decrypt(c));
      stats_.decryptions += 1;
    }
  }
  return Status::OK();
}

void LrPeer::ApplyUpdate(const GradRequest& req,
                         const std::vector<double>& reply,
                         size_t batch_size) {
  const size_t features = data_.columns();
  const double m = static_cast<double>(batch_size);
  for (size_t j = 0; j < features; ++j) {
    const double pos = reply[2 * j] - req.masks[2 * j];
    const double neg = reply[2 * j + 1] - req.masks[2 * j + 1];
    const double grad = pos - neg;
    weights_[j] -= config_.lr.learning_rate *
                   (grad / m + config_.lr.l2_reg * weights_[j]);
  }
  if (is_label_owner_) {
    const double grad_bias = reply[2 * features] - req.masks[2 * features];
    bias_ -= config_.lr.learning_rate * grad_bias / m;
  }
}

Status LrPeer::RunBatch(const std::vector<uint32_t>& batch) {
  // 1. Encrypt and exchange partial terms under our OWN key.
  std::vector<Cipher> own_partials;
  own_partials.reserve(batch.size());
  for (uint32_t i : batch) {
    const double u = PartialScore(i);
    double term = 0.25 * u;
    if (is_label_owner_) {
      const double yhat = data_.labels[i] > 0.5f ? 1.0 : -1.0;
      term -= 0.5 * yhat;
    }
    own_partials.push_back(own_->Encrypt(term, &rng_));
    stats_.encryptions += 1;
  }
  {
    ByteWriter w;
    PutCipherVector(own_partials, *own_, &w);
    inbox_.Send(Message{MessageType::kLrPartial, w.Release()});
  }
  VF2_ASSIGN_OR_RETURN(Message msg,
                       inbox_.ReceiveType(MessageType::kLrPartial));
  std::vector<Cipher> peer_partials;
  {
    ByteReader r(msg.payload);
    VF2_RETURN_IF_ERROR(GetCipherVector(&r, *peer_, &peer_partials));
  }
  if (peer_partials.size() != batch.size()) {
    return Status::ProtocolError("LR partial batch size mismatch");
  }

  // 2. Complete the residual under the PEER's key: z_i = peer_term_i +
  //    our own plaintext term (encrypted under the peer's key).
  std::vector<Cipher> z;
  z.reserve(batch.size());
  for (size_t k = 0; k < batch.size(); ++k) {
    const uint32_t i = batch[k];
    double term = 0.25 * PartialScore(i);
    if (is_label_owner_) {
      const double yhat = data_.labels[i] > 0.5f ? 1.0 : -1.0;
      term -= 0.5 * yhat;
    }
    const Cipher mine = peer_->EncryptAt(term, peer_partials[k].exponent,
                                         &rng_);
    stats_.encryptions += 1;
    Cipher zi;
    zi.exponent = peer_partials[k].exponent;
    zi.data = peer_->HAddRaw(peer_partials[k].data, mine.data);
    z.push_back(std::move(zi));
  }

  // 3. Masked gradient request under the peer's key; peer decrypts.
  GradRequest req;
  VF2_RETURN_IF_ERROR(BuildGradRequest(batch, z, &req));
  inbox_.Send(EncodeGradRequest(req, *peer_));

  VF2_ASSIGN_OR_RETURN(Message peer_req_msg,
                       inbox_.ReceiveType(MessageType::kLrGradRequest));
  GradRequest peer_req;
  VF2_RETURN_IF_ERROR(DecodeGradRequest(peer_req_msg, *own_, &peer_req));
  std::vector<double> answer;
  VF2_RETURN_IF_ERROR(AnswerGradRequest(peer_req, &answer));
  inbox_.Send(EncodeGradReply(answer));

  VF2_ASSIGN_OR_RETURN(Message reply_msg,
                       inbox_.ReceiveType(MessageType::kLrGradReply));
  std::vector<double> reply;
  VF2_RETURN_IF_ERROR(DecodeGradReply(reply_msg, &reply));
  const size_t expected =
      2 * data_.columns() + (is_label_owner_ ? 1 : 0);
  if (reply.size() < expected) {
    return Status::ProtocolError("LR grad reply too small");
  }
  ApplyUpdate(req, reply, batch.size());
  return Status::OK();
}

Status LrPeer::Run() {
  ChannelCloseGuard guard(
      inbox_.port(),
      std::string("LR party ") + (is_label_owner_ ? "B" : "A"));
  Status status = RunLoop();
  guard.SetStatus(status);
  return status;
}

Status LrPeer::RunLoop() {
  VF2_RETURN_IF_ERROR(Setup());
  const size_t n = data_.rows();
  for (size_t epoch = 0; epoch < config_.lr.epochs; ++epoch) {
    const size_t batches = LrBatchesPerEpoch(n, config_.lr);
    for (size_t b = 0; b < batches; ++b) {
      VF2_RETURN_IF_ERROR(
          RunBatch(LrBatchIndices(n, config_.lr, epoch, b)));
    }
  }
  inbox_.Send(Message{MessageType::kLrDone, {}});
  VF2_ASSIGN_OR_RETURN(Message msg, inbox_.ReceiveType(MessageType::kLrDone));
  (void)msg;
  stats_.bytes_a_to_b += inbox_.port()->sent_stats().bytes;
  return Status::OK();
}

}  // namespace

Status FedLrConfig::Validate() const {
  if (!mock_crypto && (paillier_bits < 64 || paillier_bits % 2 != 0)) {
    return Status::InvalidArgument("paillier_bits must be even and >= 64");
  }
  if (lr.epochs == 0 || lr.batch_size == 0) {
    return Status::InvalidArgument("epochs and batch_size must be >= 1");
  }
  if (lr.learning_rate <= 0) {
    return Status::InvalidArgument("learning_rate must be positive");
  }
  if (codec_num_exponents < 1 || codec_min_exponent < 0 ||
      codec_min_exponent + codec_num_exponents + kFeatureExponent > 16) {
    return Status::InvalidArgument(
        "codec exponent range (plus the feature-multiplier exponent) must "
        "stay within the 64-bit mantissa");
  }
  VF2_RETURN_IF_ERROR(network.Validate());
  return Status::OK();
}

Result<LrModel> FedLrResult::ToJointModel(
    const VerticalSplitSpec& spec) const {
  if (spec.num_parties() != 2) {
    return Status::InvalidArgument("FedLr is two-party");
  }
  size_t total = 0;
  for (const auto& cols : spec.party_columns) total += cols.size();
  if (spec.party_columns[0].size() != weights_a.size() ||
      spec.party_columns[1].size() != weights_b.size()) {
    return Status::InvalidArgument("spec does not match weight shapes");
  }
  LrModel model;
  model.weights.assign(total, 0.0);
  model.bias = bias;
  for (size_t j = 0; j < weights_a.size(); ++j) {
    model.weights[spec.party_columns[0][j]] = weights_a[j];
  }
  for (size_t j = 0; j < weights_b.size(); ++j) {
    model.weights[spec.party_columns[1][j]] = weights_b[j];
  }
  return model;
}

Result<FedLrResult> FedLrTrainer::Train(const Dataset& party_a,
                                        const Dataset& party_b) const {
  VF2_RETURN_IF_ERROR(config_.Validate());
  if (!party_b.has_labels()) {
    return Status::InvalidArgument("party B must own the labels");
  }
  if (party_a.has_labels()) {
    return Status::InvalidArgument("party A must not carry labels");
  }
  if (party_a.rows() != party_b.rows() || party_b.rows() == 0) {
    return Status::InvalidArgument("parties must hold the same instances");
  }

  auto [a_end, b_end] = ChannelEndpoint::CreatePair(config_.network);
  LrPeer peer_a(config_, party_a, /*is_label_owner=*/false, a_end.get(),
                /*rng_salt=*/1);
  LrPeer peer_b(config_, party_b, /*is_label_owner=*/true, b_end.get(),
                /*rng_salt=*/2);

  Status a_status;
  std::thread a_thread([&] { a_status = peer_a.Run(); });
  Status b_status = peer_b.Run();
  a_thread.join();
  VF2_RETURN_IF_ERROR(b_status);
  VF2_RETURN_IF_ERROR(a_status);

  FedLrResult result;
  result.weights_a = peer_a.weights();
  result.weights_b = peer_b.weights();
  result.bias = peer_b.bias();
  result.stats = peer_b.stats();
  result.stats.hadds += peer_a.stats().hadds;
  result.stats.scalings += peer_a.stats().scalings;
  result.stats.packs += peer_a.stats().packs;
  result.stats.encryptions += peer_a.stats().encryptions;
  result.stats.decryptions += peer_a.stats().decryptions;
  result.stats.bytes_b_to_a = peer_b.stats().bytes_a_to_b;
  result.stats.bytes_a_to_b = peer_a.stats().bytes_a_to_b;
  return result;
}

}  // namespace vf2boost
