#include "metrics/metrics.h"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "common/logging.h"

namespace vf2boost {

double Auc(const std::vector<double>& scores,
           const std::vector<float>& labels) {
  VF2_CHECK(scores.size() == labels.size());
  const size_t n = scores.size();
  std::vector<size_t> order(n);
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(),
            [&scores](size_t a, size_t b) { return scores[a] < scores[b]; });

  // Rank-sum (Mann-Whitney) with average ranks for ties.
  double rank_sum_pos = 0;
  size_t num_pos = 0;
  size_t i = 0;
  while (i < n) {
    size_t j = i;
    while (j < n && scores[order[j]] == scores[order[i]]) ++j;
    const double avg_rank = 0.5 * static_cast<double>(i + 1 + j);  // 1-based
    for (size_t k = i; k < j; ++k) {
      if (labels[order[k]] > 0.5f) {
        rank_sum_pos += avg_rank;
        ++num_pos;
      }
    }
    i = j;
  }
  const size_t num_neg = n - num_pos;
  if (num_pos == 0 || num_neg == 0) return 0.5;
  const double u = rank_sum_pos - static_cast<double>(num_pos) *
                                      static_cast<double>(num_pos + 1) / 2.0;
  return u / (static_cast<double>(num_pos) * static_cast<double>(num_neg));
}

double LogLoss(const std::vector<double>& scores,
               const std::vector<float>& labels) {
  VF2_CHECK(scores.size() == labels.size() && !scores.empty());
  double total = 0;
  for (size_t i = 0; i < scores.size(); ++i) {
    // Numerically stable: log(1 + exp(-|s|)) formulation.
    const double s = scores[i];
    const double y = labels[i];
    total += std::log1p(std::exp(-std::fabs(s))) + (s > 0 ? (1 - y) * s : -y * s);
  }
  return total / static_cast<double>(scores.size());
}

double Rmse(const std::vector<double>& predictions,
            const std::vector<float>& labels) {
  VF2_CHECK(predictions.size() == labels.size() && !predictions.empty());
  double total = 0;
  for (size_t i = 0; i < predictions.size(); ++i) {
    const double d = predictions[i] - labels[i];
    total += d * d;
  }
  return std::sqrt(total / static_cast<double>(predictions.size()));
}

double Accuracy(const std::vector<double>& scores,
                const std::vector<float>& labels) {
  VF2_CHECK(scores.size() == labels.size() && !scores.empty());
  size_t correct = 0;
  for (size_t i = 0; i < scores.size(); ++i) {
    const bool predicted = scores[i] > 0;
    const bool actual = labels[i] > 0.5f;
    if (predicted == actual) ++correct;
  }
  return static_cast<double>(correct) / static_cast<double>(scores.size());
}

}  // namespace vf2boost
