#ifndef VF2BOOST_METRICS_METRICS_H_
#define VF2BOOST_METRICS_METRICS_H_

#include <vector>

namespace vf2boost {

/// Area under the ROC curve of raw scores (any monotone transform of the
/// probability works) against {0,1} labels. Ties share rank. Returns 0.5
/// when one class is absent.
double Auc(const std::vector<double>& scores, const std::vector<float>& labels);

/// Mean logistic loss of raw (pre-sigmoid) scores against {0,1} labels.
double LogLoss(const std::vector<double>& scores,
               const std::vector<float>& labels);

/// Root mean squared error of predictions against labels.
double Rmse(const std::vector<double>& predictions,
            const std::vector<float>& labels);

/// Fraction of correct {0,1} classifications of raw scores at threshold 0.
double Accuracy(const std::vector<double>& scores,
                const std::vector<float>& labels);

}  // namespace vf2boost

#endif  // VF2BOOST_METRICS_METRICS_H_
