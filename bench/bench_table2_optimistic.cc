// Table 2: breakdown of the optimistic node-splitting strategy and the
// polynomial-based histogram packing on one full decision tree, varying the
// feature split between the parties (40K/10K, 25K/25K, 10K/40K in the paper).
//
// Part 1: real scaled-down training runs (reports the Party-B split share
// and dirty-node rate too). Part 2: calibrated simulation at paper scale.

#include <cstdio>

#include "bench/bench_util.h"
#include "common/timer.h"
#include "fed/fed_trainer.h"
#include "sim/protocol_sim.h"

namespace vf2boost {
namespace {

using bench::Fmt;
using bench::PrintRow;
using bench::PrintRule;

struct TreeRun {
  double seconds = 0;
  double split_b_share = 0;
  double dirty = 0;
};

TreeRun RunTree(const bench::BenchFixture& f, bool optimistic, bool packing) {
  FedConfig config;
  config.paillier_bits = 256;
  config.optimistic = optimistic;
  config.packing = packing;
  config.reordered = true;  // both arms share the §5.1 accumulation
  config.gbdt.num_trees = 1;
  config.gbdt.num_layers = 5;
  config.gbdt.max_bins = 10;

  Stopwatch clock;
  auto result = FedTrainer(config).Train(f.shards);
  if (!result.ok()) {
    std::fprintf(stderr, "run failed: %s\n", result.status().ToString().c_str());
    std::abort();
  }
  TreeRun run;
  run.seconds = clock.ElapsedSeconds();
  const double splits =
      static_cast<double>(result->stats.splits_a + result->stats.splits_b);
  run.split_b_share =
      splits == 0 ? 0 : result->stats.splits_b / splits;
  run.dirty = static_cast<double>(result->stats.dirty_nodes);
  return run;
}

void RealPart() {
  std::printf("== Table 2 (real runs, scaled: 256-bit keys, N~4000) ==\n");
  const std::vector<int> widths = {14, 12, 10, 12, 12, 14, 8};
  PrintRow({"#Features A/B", "B-split shr", "Baseline", "+OptimSplit",
            "+HistPack", "+Optim+Pack", "Dirty"},
           widths);
  PrintRule(widths);
  struct Ratio {
    const char* name;
    double a, b;
  };
  for (const Ratio& ratio : {Ratio{"32/8", 0.8, 0.2}, Ratio{"20/20", 0.5, 0.5},
                             Ratio{"8/32", 0.2, 0.8}}) {
    SyntheticSpec spec;
    spec.rows = 5000;
    spec.cols = 40;
    spec.density = 0.2;
    spec.seed = 17;
    bench::BenchFixture f =
        bench::MakeBenchFixture(spec, {ratio.a, ratio.b}, 19);

    const TreeRun base = RunTree(f, false, false);
    const TreeRun optim = RunTree(f, true, false);
    const TreeRun pack = RunTree(f, false, true);
    const TreeRun both = RunTree(f, true, true);
    PrintRow({ratio.name, Fmt("%.1f%%", 100 * base.split_b_share),
              Fmt("%.2fs", base.seconds),
              Fmt("%.2fx", base.seconds / optim.seconds),
              Fmt("%.2fx", base.seconds / pack.seconds),
              Fmt("%.2fx", base.seconds / both.seconds),
              Fmt("%.0f", both.dirty)},
             widths);
  }
  std::printf("\n");
}

void SimulatedPart() {
  std::printf(
      "== Table 2 (simulated at paper scale: N=10M, S=2048, 8 workers) ==\n");
  std::printf("paper reference (25K/25K): base 4286s; +OptimSplit 1.32x, "
              "+HistPack 1.45x, both 2.16x\n");
  const CostModel cost = CostModel::PaperScale();
  const std::vector<int> widths = {14, 10, 12, 12, 14};
  PrintRow({"#Features A/B", "Baseline", "+OptimSplit", "+HistPack",
            "+Optim+Pack"},
           widths);
  PrintRule(widths);
  struct Shape {
    const char* name;
    double a, b;
  };
  for (const Shape& s : {Shape{"40K/10K", 40000, 10000},
                         Shape{"25K/25K", 25000, 25000},
                         Shape{"10K/40K", 10000, 40000}}) {
    SimWorkload w;
    w.instances = 10e6;
    w.features_a = s.a;
    w.features_b = s.b;
    w.density = 0.002;
    SimFlags none, o, p, op;
    o.optimistic = true;
    p.packing = true;
    op.optimistic = op.packing = true;
    const double base = SimulateTree(w, none, cost).total_seconds;
    const double optim = SimulateTree(w, o, cost).total_seconds;
    const double pack = SimulateTree(w, p, cost).total_seconds;
    const double both = SimulateTree(w, op, cost).total_seconds;
    PrintRow({s.name, Fmt("%.0fs", base), Fmt("%.2fx", base / optim),
              Fmt("%.2fx", base / pack), Fmt("%.2fx", base / both)},
             widths);
  }
  std::printf("\n");
}

}  // namespace
}  // namespace vf2boost

int main() {
  vf2boost::RealPart();
  vf2boost::SimulatedPart();
  return 0;
}
