// Figure 7: throughputs (#operations per second) of the cryptography
// operations, one thread, values drawn from a normal distribution.
//
// The paper reports S = 2048. Our from-scratch bignum is slower than GMP in
// absolute terms, so the suite sweeps S in {256, 512, 1024}; the *relative*
// picture — re-ordered HAdd ~4x naive HAdd, packed decryption ~pack_slots x
// raw decryption — is the reproduced result.

// Run with `--json BENCH_crypto.json` to also write per-benchmark ops/s in
// the repo's flat JSON metric format (bench/bench_util.h) for regression
// tracking.

#include <benchmark/benchmark.h>

#include <map>

#include "bench/bench_util.h"
#include "bigint/modarith.h"
#include "common/logging.h"
#include "crypto/accumulator.h"
#include "crypto/backend.h"
#include "crypto/encoding.h"
#include "crypto/packing.h"

namespace vf2boost {
namespace {

struct Setup {
  std::unique_ptr<PaillierBackend> backend;
  Rng rng{7};

  explicit Setup(size_t bits) {
    Rng krng(1234 + bits);
    auto kp = PaillierKeyPair::Generate(bits, &krng);
    VF2_CHECK(kp.ok());
    backend = std::make_unique<PaillierBackend>(kp->pub, FixedPointCodec());
    backend->SetPrivateKey(kp->priv);
  }
};

Setup& GetSetup(size_t bits) {
  static Setup s256(256), s512(512), s1024(1024);
  switch (bits) {
    case 256:
      return s256;
    case 512:
      return s512;
    default:
      return s1024;
  }
}

void BM_Encrypt(benchmark::State& state) {
  Setup& s = GetSetup(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(s.backend->Encrypt(s.rng.NextGaussian(), &s.rng));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_Encrypt)->Arg(256)->Arg(512)->Arg(1024);

void BM_Decrypt(benchmark::State& state) {
  Setup& s = GetSetup(state.range(0));
  Cipher c = s.backend->Encrypt(s.rng.NextGaussian(), &s.rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(s.backend->Decrypt(c));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_Decrypt)->Arg(256)->Arg(512)->Arg(1024);

// Naive streaming accumulation: random exponents force ~(E-1)/E scalings.
void BM_HAddNaive(benchmark::State& state) {
  Setup& s = GetSetup(state.range(0));
  std::vector<Cipher> stream;
  for (int i = 0; i < 64; ++i) {
    stream.push_back(s.backend->Encrypt(s.rng.NextGaussian(), &s.rng));
  }
  for (auto _ : state) {
    NaiveCipherAccumulator acc(s.backend.get());
    for (const Cipher& c : stream) acc.Add(c);
    benchmark::DoNotOptimize(acc.Finalize());
  }
  state.SetItemsProcessed(state.iterations() * 64);
}
BENCHMARK(BM_HAddNaive)->Arg(256)->Arg(512)->Arg(1024);

// Re-ordered accumulation (§5.1): per-exponent workspaces, E-1 scalings.
void BM_HAddReordered(benchmark::State& state) {
  Setup& s = GetSetup(state.range(0));
  std::vector<Cipher> stream;
  for (int i = 0; i < 64; ++i) {
    stream.push_back(s.backend->Encrypt(s.rng.NextGaussian(), &s.rng));
  }
  for (auto _ : state) {
    ReorderedCipherAccumulator acc(s.backend.get());
    for (const Cipher& c : stream) acc.Add(c);
    benchmark::DoNotOptimize(acc.Finalize());
  }
  state.SetItemsProcessed(state.iterations() * 64);
}
BENCHMARK(BM_HAddReordered)->Arg(256)->Arg(512)->Arg(1024);

void BM_SMul(benchmark::State& state) {
  Setup& s = GetSetup(state.range(0));
  Cipher c = s.backend->Encrypt(1.5, &s.rng);
  const BigInt k(123456789);
  for (auto _ : state) {
    benchmark::DoNotOptimize(s.backend->SMulRaw(k, c.data));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_SMul)->Arg(256)->Arg(512)->Arg(1024);

// Pack a full cipher group (capacity slots) then decrypt once; items = slots
// recovered per second — compare against BM_Decrypt for the ~t x claim.
void BM_PackAndDecrypt(benchmark::State& state) {
  Setup& s = GetSetup(state.range(0));
  const size_t slot_bits = 32;
  const size_t capacity = MaxSlotsPerCipher(
      slot_bits, s.backend->plain_modulus().BitLength());
  std::vector<Cipher> slots;
  for (size_t i = 0; i < capacity; ++i) {
    slots.push_back(s.backend->EncryptAt(1.0 + i, 8, &s.rng));
  }
  for (auto _ : state) {
    auto packed = PackCiphers(slots, slot_bits, *s.backend);
    benchmark::DoNotOptimize(DecryptPacked(packed.value(), *s.backend));
  }
  state.SetItemsProcessed(state.iterations() * capacity);
}
BENCHMARK(BM_PackAndDecrypt)->Arg(256)->Arg(512)->Arg(1024);

// Raw decryption of the same number of slots, for the direct comparison.
void BM_DecryptUnpacked(benchmark::State& state) {
  Setup& s = GetSetup(state.range(0));
  const size_t capacity = MaxSlotsPerCipher(
      32, s.backend->plain_modulus().BitLength());
  std::vector<Cipher> slots;
  for (size_t i = 0; i < capacity; ++i) {
    slots.push_back(s.backend->EncryptAt(1.0 + i, 8, &s.rng));
  }
  for (auto _ : state) {
    for (const Cipher& c : slots) {
      benchmark::DoNotOptimize(s.backend->Decrypt(c));
    }
  }
  state.SetItemsProcessed(state.iterations() * capacity);
}
BENCHMARK(BM_DecryptUnpacked)->Arg(256)->Arg(512)->Arg(1024);

// BM_Encrypt under the forced-scalar Montgomery kernel: the baseline the
// AVX2 column-tiled kernel is measured against (BM_Encrypt itself runs under
// kAuto dispatch, which vectorizes the >= 2048-bit ciphertext rings).
void BM_EncryptScalar(benchmark::State& state) {
  Setup& s = GetSetup(state.range(0));
  const MontKernel saved = GetMontKernel();
  SetMontKernel(MontKernel::kScalar);
  for (auto _ : state) {
    benchmark::DoNotOptimize(s.backend->Encrypt(s.rng.NextGaussian(), &s.rng));
  }
  SetMontKernel(saved);
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_EncryptScalar)->Arg(256)->Arg(512)->Arg(1024);

GhPackLayout GhLayoutFor(const PaillierBackend& backend, uint64_t max_count) {
  FixedPointCodec codec(16, 8, 1);
  auto layout = MakeGhPackLayout(codec, max_count, /*value_bound=*/1.0,
                                 backend.plain_modulus().BitLength());
  VF2_CHECK(layout.ok());
  return layout.value();
}

// Decrypting one gh-packed bin recovers count, g and h in a single CRT
// decryption — compare the items/s against BM_Decrypt (one stat per op).
void BM_GhPackedDecrypt(benchmark::State& state) {
  Setup& s = GetSetup(state.range(0));
  const GhPackLayout layout = GhLayoutFor(*s.backend, 64);
  BigInt bin;
  for (int i = 0; i < 64; ++i) {
    const BigInt c = s.backend->EncryptRaw(
        EncodeGhPair(layout, s.rng.NextDouble() * 2 - 1,
                     s.rng.NextDouble() * 0.25),
        &s.rng);
    bin = (i == 0) ? c : s.backend->HAddRaw(bin, c);
  }
  for (auto _ : state) {
    auto slots = DecodeGhSlots(layout, s.backend->DecryptRaw(bin));
    VF2_CHECK(slots.ok());
    benchmark::DoNotOptimize(slots->g);
  }
  // Two statistics (g and h) recovered per decryption.
  state.SetItemsProcessed(state.iterations() * 2);
}
BENCHMARK(BM_GhPackedDecrypt)->Arg(256)->Arg(512)->Arg(1024);

// The end-to-end gradient stream the tentpole targets: B encrypts 64
// instances, the ciphertexts cross the wire (serialization as the transfer
// proxy), A accumulates them into 8 bins, B decrypts the bins. Classic path:
// two ciphers per instance, two accumulators and decryptions per bin.
void BM_GradStreamUnpacked(benchmark::State& state) {
  Setup& s = GetSetup(state.range(0));
  constexpr int kRows = 64, kBins = 8;
  for (auto _ : state) {
    std::vector<BigInt> g_bins(kBins), h_bins(kBins);
    size_t bytes = 0;
    for (int i = 0; i < kRows; ++i) {
      const Cipher g =
          s.backend->EncryptAt(s.rng.NextDouble() * 2 - 1, 8, &s.rng);
      const Cipher h = s.backend->EncryptAt(s.rng.NextDouble() * 0.25, 8,
                                            &s.rng);
      bytes += g.data.ToBytes().size() + h.data.ToBytes().size();
      const int b = i % kBins;
      g_bins[b] = (i < kBins) ? g.data : s.backend->HAddRaw(g_bins[b], g.data);
      h_bins[b] = (i < kBins) ? h.data : s.backend->HAddRaw(h_bins[b], h.data);
    }
    benchmark::DoNotOptimize(bytes);
    for (int b = 0; b < kBins; ++b) {
      benchmark::DoNotOptimize(s.backend->DecryptRaw(g_bins[b]));
      benchmark::DoNotOptimize(s.backend->DecryptRaw(h_bins[b]));
    }
  }
  state.SetItemsProcessed(state.iterations() * kRows);
}
BENCHMARK(BM_GradStreamUnpacked)->Arg(256)->Arg(512)->Arg(1024);

// gh-packed stream: one cipher per instance, one accumulator and one
// decryption per bin. The items/s ratio against BM_GradStreamUnpacked is the
// tentpole's end-to-end speedup (reported as GradStreamSpeedup/<bits>).
void BM_GradStreamGhPacked(benchmark::State& state) {
  Setup& s = GetSetup(state.range(0));
  constexpr int kRows = 64, kBins = 8;
  const GhPackLayout layout = GhLayoutFor(*s.backend, kRows);
  for (auto _ : state) {
    std::vector<BigInt> bins(kBins);
    size_t bytes = 0;
    for (int i = 0; i < kRows; ++i) {
      const BigInt c = s.backend->EncryptRaw(
          EncodeGhPair(layout, s.rng.NextDouble() * 2 - 1,
                       s.rng.NextDouble() * 0.25),
          &s.rng);
      bytes += c.ToBytes().size();
      const int b = i % kBins;
      bins[b] = (i < kBins) ? c : s.backend->HAddRaw(bins[b], c);
    }
    benchmark::DoNotOptimize(bytes);
    for (int b = 0; b < kBins; ++b) {
      auto slots = DecodeGhSlots(layout, s.backend->DecryptRaw(bins[b]));
      VF2_CHECK(slots.ok());
      benchmark::DoNotOptimize(slots->g);
    }
  }
  state.SetItemsProcessed(state.iterations() * kRows);
}
BENCHMARK(BM_GradStreamGhPacked)->Arg(256)->Arg(512)->Arg(1024);

// Console reporter that additionally records each benchmark's throughput so
// main() can emit the JSON metrics file.
class CapturingReporter : public benchmark::ConsoleReporter {
 public:
  explicit CapturingReporter(bench::JsonWriter* json) : json_(json) {}

  void ReportRuns(const std::vector<Run>& reports) override {
    for (const Run& run : reports) {
      if (run.run_type != Run::RT_Iteration || run.error_occurred) continue;
      const auto items = run.counters.find("items_per_second");
      double ops = 0;
      if (items != run.counters.end()) {
        ops = items->second.value;
      } else if (run.real_accumulated_time > 0 && run.iterations > 0) {
        ops = static_cast<double>(run.iterations) / run.real_accumulated_time;
      } else {
        continue;
      }
      json_->Add(run.benchmark_name(), ops, "ops/s");
      captured_[run.benchmark_name()] = ops;
    }
    ConsoleReporter::ReportRuns(reports);
  }

  /// ops/s by benchmark name, for derived metrics computed after the run.
  const std::map<std::string, double>& captured() const { return captured_; }

 private:
  bench::JsonWriter* json_;
  std::map<std::string, double> captured_;
};

}  // namespace
}  // namespace vf2boost

int main(int argc, char** argv) {
  const std::string json_path =
      vf2boost::bench::TakeStringFlag(&argc, argv, "--json");
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  vf2boost::bench::JsonWriter json;
  vf2boost::CapturingReporter reporter(&json);
  benchmark::RunSpecifiedBenchmarks(&reporter);
  benchmark::Shutdown();
  // Derived: the tentpole's end-to-end gradient-stream speedup per key size.
  const auto& got = reporter.captured();
  for (const char* bits : {"256", "512", "1024"}) {
    const auto packed =
        got.find(std::string("BM_GradStreamGhPacked/") + bits);
    const auto classic =
        got.find(std::string("BM_GradStreamUnpacked/") + bits);
    if (packed != got.end() && classic != got.end() &&
        classic->second > 0) {
      json.Add(std::string("GradStreamSpeedup/") + bits,
               packed->second / classic->second, "x");
    }
  }
  if (!json_path.empty() && !json.WriteTo(json_path)) return 1;
  return 0;
}
