// Figure 7: throughputs (#operations per second) of the cryptography
// operations, one thread, values drawn from a normal distribution.
//
// The paper reports S = 2048. Our from-scratch bignum is slower than GMP in
// absolute terms, so the suite sweeps S in {256, 512, 1024}; the *relative*
// picture — re-ordered HAdd ~4x naive HAdd, packed decryption ~pack_slots x
// raw decryption — is the reproduced result.

// Run with `--json BENCH_crypto.json` to also write per-benchmark ops/s in
// the repo's flat JSON metric format (bench/bench_util.h) for regression
// tracking.

#include <benchmark/benchmark.h>

#include "bench/bench_util.h"
#include "common/logging.h"
#include "crypto/accumulator.h"
#include "crypto/backend.h"
#include "crypto/packing.h"

namespace vf2boost {
namespace {

struct Setup {
  std::unique_ptr<PaillierBackend> backend;
  Rng rng{7};

  explicit Setup(size_t bits) {
    Rng krng(1234 + bits);
    auto kp = PaillierKeyPair::Generate(bits, &krng);
    VF2_CHECK(kp.ok());
    backend = std::make_unique<PaillierBackend>(kp->pub, FixedPointCodec());
    backend->SetPrivateKey(kp->priv);
  }
};

Setup& GetSetup(size_t bits) {
  static Setup s256(256), s512(512), s1024(1024);
  switch (bits) {
    case 256:
      return s256;
    case 512:
      return s512;
    default:
      return s1024;
  }
}

void BM_Encrypt(benchmark::State& state) {
  Setup& s = GetSetup(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(s.backend->Encrypt(s.rng.NextGaussian(), &s.rng));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_Encrypt)->Arg(256)->Arg(512)->Arg(1024);

void BM_Decrypt(benchmark::State& state) {
  Setup& s = GetSetup(state.range(0));
  Cipher c = s.backend->Encrypt(s.rng.NextGaussian(), &s.rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(s.backend->Decrypt(c));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_Decrypt)->Arg(256)->Arg(512)->Arg(1024);

// Naive streaming accumulation: random exponents force ~(E-1)/E scalings.
void BM_HAddNaive(benchmark::State& state) {
  Setup& s = GetSetup(state.range(0));
  std::vector<Cipher> stream;
  for (int i = 0; i < 64; ++i) {
    stream.push_back(s.backend->Encrypt(s.rng.NextGaussian(), &s.rng));
  }
  for (auto _ : state) {
    NaiveCipherAccumulator acc(s.backend.get());
    for (const Cipher& c : stream) acc.Add(c);
    benchmark::DoNotOptimize(acc.Finalize());
  }
  state.SetItemsProcessed(state.iterations() * 64);
}
BENCHMARK(BM_HAddNaive)->Arg(256)->Arg(512)->Arg(1024);

// Re-ordered accumulation (§5.1): per-exponent workspaces, E-1 scalings.
void BM_HAddReordered(benchmark::State& state) {
  Setup& s = GetSetup(state.range(0));
  std::vector<Cipher> stream;
  for (int i = 0; i < 64; ++i) {
    stream.push_back(s.backend->Encrypt(s.rng.NextGaussian(), &s.rng));
  }
  for (auto _ : state) {
    ReorderedCipherAccumulator acc(s.backend.get());
    for (const Cipher& c : stream) acc.Add(c);
    benchmark::DoNotOptimize(acc.Finalize());
  }
  state.SetItemsProcessed(state.iterations() * 64);
}
BENCHMARK(BM_HAddReordered)->Arg(256)->Arg(512)->Arg(1024);

void BM_SMul(benchmark::State& state) {
  Setup& s = GetSetup(state.range(0));
  Cipher c = s.backend->Encrypt(1.5, &s.rng);
  const BigInt k(123456789);
  for (auto _ : state) {
    benchmark::DoNotOptimize(s.backend->SMulRaw(k, c.data));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_SMul)->Arg(256)->Arg(512)->Arg(1024);

// Pack a full cipher group (capacity slots) then decrypt once; items = slots
// recovered per second — compare against BM_Decrypt for the ~t x claim.
void BM_PackAndDecrypt(benchmark::State& state) {
  Setup& s = GetSetup(state.range(0));
  const size_t slot_bits = 32;
  const size_t capacity = MaxSlotsPerCipher(
      slot_bits, s.backend->plain_modulus().BitLength());
  std::vector<Cipher> slots;
  for (size_t i = 0; i < capacity; ++i) {
    slots.push_back(s.backend->EncryptAt(1.0 + i, 8, &s.rng));
  }
  for (auto _ : state) {
    auto packed = PackCiphers(slots, slot_bits, *s.backend);
    benchmark::DoNotOptimize(DecryptPacked(packed.value(), *s.backend));
  }
  state.SetItemsProcessed(state.iterations() * capacity);
}
BENCHMARK(BM_PackAndDecrypt)->Arg(256)->Arg(512)->Arg(1024);

// Raw decryption of the same number of slots, for the direct comparison.
void BM_DecryptUnpacked(benchmark::State& state) {
  Setup& s = GetSetup(state.range(0));
  const size_t capacity = MaxSlotsPerCipher(
      32, s.backend->plain_modulus().BitLength());
  std::vector<Cipher> slots;
  for (size_t i = 0; i < capacity; ++i) {
    slots.push_back(s.backend->EncryptAt(1.0 + i, 8, &s.rng));
  }
  for (auto _ : state) {
    for (const Cipher& c : slots) {
      benchmark::DoNotOptimize(s.backend->Decrypt(c));
    }
  }
  state.SetItemsProcessed(state.iterations() * capacity);
}
BENCHMARK(BM_DecryptUnpacked)->Arg(256)->Arg(512)->Arg(1024);

// Console reporter that additionally records each benchmark's throughput so
// main() can emit the JSON metrics file.
class CapturingReporter : public benchmark::ConsoleReporter {
 public:
  explicit CapturingReporter(bench::JsonWriter* json) : json_(json) {}

  void ReportRuns(const std::vector<Run>& reports) override {
    for (const Run& run : reports) {
      if (run.run_type != Run::RT_Iteration || run.error_occurred) continue;
      const auto items = run.counters.find("items_per_second");
      if (items != run.counters.end()) {
        json_->Add(run.benchmark_name(), items->second.value, "ops/s");
      } else if (run.real_accumulated_time > 0 && run.iterations > 0) {
        json_->Add(run.benchmark_name(),
                   static_cast<double>(run.iterations) /
                       run.real_accumulated_time,
                   "ops/s");
      }
    }
    ConsoleReporter::ReportRuns(reports);
  }

 private:
  bench::JsonWriter* json_;
};

}  // namespace
}  // namespace vf2boost

int main(int argc, char** argv) {
  const std::string json_path =
      vf2boost::bench::TakeStringFlag(&argc, argv, "--json");
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  vf2boost::bench::JsonWriter json;
  vf2boost::CapturingReporter reporter(&json);
  benchmark::RunSpecifiedBenchmarks(&reporter);
  benchmark::Shutdown();
  if (!json_path.empty() && !json.WriteTo(json_path)) return 1;
  return 0;
}
