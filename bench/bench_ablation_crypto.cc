// Ablations for the design choices behind §5:
//  (a) exponent-range E vs scaling count — why the re-ordered accumulation
//      exists at all (E = 1 would need no scalings but leaks value ranges,
//      footnote 2 of the paper);
//  (b) packing slot width vs capacity and per-slot decrypt cost — why
//      M = 64 / 32 slots is the paper's sweet spot at S = 2048;
//  (c) blaster batch count vs pipelined root makespan (simulated).

#include <cstdio>

#include "bench/bench_util.h"
#include "common/logging.h"
#include "common/timer.h"
#include "crypto/accumulator.h"
#include "crypto/packing.h"
#include "crypto/paillier.h"
#include "sim/protocol_sim.h"

namespace vf2boost {
namespace {

using bench::Fmt;
using bench::PrintRow;
using bench::PrintRule;

void ExponentAblation() {
  std::printf("== Ablation (a): exponent range E vs scaling cost ==\n");
  Rng krng(11);
  auto kp = PaillierKeyPair::Generate(512, &krng);
  VF2_CHECK(kp.ok());

  const std::vector<int> widths = {4, 14, 14, 14, 14};
  PrintRow({"E", "naive scal.", "reord scal.", "naive time", "reord time"},
           widths);
  PrintRule(widths);
  for (int e : {1, 2, 4, 8}) {
    FixedPointCodec codec(16, 8, e);
    PaillierBackend backend(kp->pub, codec);
    backend.SetPrivateKey(kp->priv);
    Rng rng(3);
    std::vector<Cipher> stream;
    for (int i = 0; i < 256; ++i) {
      stream.push_back(backend.Encrypt(rng.NextGaussian(), &rng));
    }
    AccumulatorStats ns, rs;
    Stopwatch t1;
    SumCiphers(stream, backend, /*reordered=*/false, &ns);
    const double naive_time = t1.ElapsedSeconds();
    Stopwatch t2;
    SumCiphers(stream, backend, /*reordered=*/true, &rs);
    const double reord_time = t2.ElapsedSeconds();
    PrintRow({std::to_string(e), std::to_string(ns.scalings),
              std::to_string(rs.scalings), Fmt("%.1fms", naive_time * 1e3),
              Fmt("%.1fms", reord_time * 1e3)},
             widths);
  }
  std::printf("(re-ordered scalings stay <= E-1 while naive grows with N)\n\n");
}

void PackingAblation() {
  std::printf("== Ablation (b): slot width vs packing capacity/throughput "
              "(1024-bit key) ==\n");
  Rng krng(13);
  auto kp = PaillierKeyPair::Generate(1024, &krng);
  VF2_CHECK(kp.ok());
  FixedPointCodec codec(16, 8, 4);
  PaillierBackend backend(kp->pub, codec);
  backend.SetPrivateKey(kp->priv);
  Rng rng(5);

  const std::vector<int> widths = {10, 9, 16, 16, 9};
  PrintRow({"slot bits", "slots", "pack+dec/slot", "raw dec/slot",
            "wire cut"},
           widths);
  PrintRule(widths);
  for (size_t slot_bits : {32, 64, 128, 256}) {
    const size_t capacity =
        MaxSlotsPerCipher(slot_bits, kp->pub.n().BitLength());
    std::vector<Cipher> slots;
    for (size_t i = 0; i < capacity; ++i) {
      slots.push_back(backend.EncryptAt(1.0 + static_cast<double>(i), 8,
                                        &rng));
    }
    Stopwatch t1;
    int reps = 0;
    do {
      auto packed = PackCiphers(slots, slot_bits, backend);
      VF2_CHECK(packed.ok());
      auto out = DecryptPacked(packed.value(), backend);
      VF2_CHECK(out.ok());
      ++reps;
    } while (t1.ElapsedSeconds() < 0.2);
    const double packed_per_slot =
        t1.ElapsedSeconds() / (reps * static_cast<double>(capacity));

    Stopwatch t2;
    reps = 0;
    do {
      for (const Cipher& c : slots) backend.Decrypt(c);
      ++reps;
    } while (t2.ElapsedSeconds() < 0.2);
    const double raw_per_slot =
        t2.ElapsedSeconds() / (reps * static_cast<double>(capacity));

    PrintRow({std::to_string(slot_bits), std::to_string(capacity),
              Fmt("%.0fus", packed_per_slot * 1e6),
              Fmt("%.0fus", raw_per_slot * 1e6),
              Fmt("%.1fx", static_cast<double>(capacity))},
             widths);
  }
  std::printf("(small slots maximize the wire/decrypt amortization; the "
              "slot must still hold 2*N*Bound*B^e)\n\n");
}

void BlasterBatchAblation() {
  std::printf("== Ablation (c): blaster batch count vs simulated root "
              "makespan (paper scale) ==\n");
  SimWorkload w;
  w.instances = 2.5e6;
  w.features_a = 25000;
  w.features_b = 25000;
  w.density = 0.002;
  const CostModel cost = CostModel::PaperScale();

  const std::vector<int> widths = {8, 10, 10};
  PrintRow({"batches", "total", "speedup"}, widths);
  PrintRule(widths);
  double base = 0;
  for (size_t batches : {1, 2, 4, 8, 16, 32, 64}) {
    SimFlags flags;
    flags.blaster = batches > 1;
    flags.blaster_batches = batches;
    const double t = SimulateRootNode(w, flags, cost).total_seconds;
    if (batches == 1) base = t;
    PrintRow({std::to_string(batches), Fmt("%.0fs", t),
              Fmt("%.2fx", base / t)},
             widths);
  }
  std::printf("(returns diminish once per-batch latency dominates)\n\n");
}

}  // namespace
}  // namespace vf2boost

int main() {
  vf2boost::ExponentAblation();
  vf2boost::PackingAblation();
  vf2boost::BlasterBatchAblation();
  return 0;
}
