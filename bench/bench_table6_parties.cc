// Table 6: scalability w.r.t. the number of parties (2-4), with validation
// AUC. Speed is replayed at paper scale through the simulator; AUC comes
// from REAL multi-party training runs on epsilon/rcv1-shaped data (features
// divided evenly across the A parties, as in §6.4).

#include <cstdio>

#include "bench/bench_util.h"
#include "fed/fed_trainer.h"
#include "gbdt/trainer.h"
#include "metrics/metrics.h"
#include "sim/protocol_sim.h"

namespace vf2boost {
namespace {

using bench::Fmt;
using bench::PrintRow;
using bench::PrintRule;

// Real multi-party AUC on a shape-matched dataset: the total feature set is
// split into 4 equal groups; party count k uses k-1 of them as A parties
// plus the fixed B group.
std::vector<double> MultiPartyAuc(const char* dataset, double scale) {
  auto spec = PaperDatasetSpec(dataset, scale);
  if (!spec.ok()) return {};
  Dataset all = GenerateSynthetic(*spec);
  Rng rng(606);
  Dataset train, valid;
  TrainValidSplit(all, 0.8, &rng, &train, &valid);
  VerticalSplitSpec quarters =
      SplitColumnsRandomly(spec->cols, {1, 1, 1, 1}, &rng);

  GbdtParams params;
  params.num_trees = 6;
  params.num_layers = 5;
  params.max_bins = 16;

  std::vector<double> aucs;
  // "Party B only" row.
  {
    Dataset b_train;
    b_train.features = train.features.SelectColumns(quarters.party_columns[3]);
    b_train.labels = train.labels;
    GbdtTrainer plain(params);
    auto model = plain.Train(b_train);
    Dataset b_valid;
    b_valid.features = valid.features.SelectColumns(quarters.party_columns[3]);
    aucs.push_back(model.ok() ? Auc(model->PredictRaw(b_valid.features),
                                    valid.labels)
                              : 0);
  }
  for (size_t num_a = 1; num_a <= 3; ++num_a) {
    VerticalSplitSpec sub;
    for (size_t p = 0; p < num_a; ++p) {
      sub.party_columns.push_back(quarters.party_columns[p]);
    }
    sub.party_columns.push_back(quarters.party_columns[3]);
    auto shards = PartitionVertically(train, sub, num_a);
    if (!shards.ok()) {
      aucs.push_back(0);
      continue;
    }
    FedConfig config = FedConfig::Vf2Boost();
    config.mock_crypto = true;  // AUC is crypto-independent (tested)
    config.gbdt = params;
    auto result = FedTrainer(config).Train(shards.value());
    double auc = 0;
    if (result.ok()) {
      auto joint = result->ToJointModel(sub);
      if (joint.ok()) {
        auc = Auc(joint->PredictRaw(valid.features), valid.labels);
      }
    }
    aucs.push_back(auc);
  }
  return aucs;
}

double SimSpeed(const char* dataset, double parties_a) {
  // The paper's §6.4 setup: features are divided into four equal groups;
  // party count k uses k-1 groups as A parties plus B's fixed group — so
  // every extra party contributes NEW features.
  SimWorkload w;
  if (std::string(dataset) == "epsilon") {
    w.instances = 4e5;
    w.features_a = 500 * parties_a;
    w.features_b = 500;
    w.density = 1.0;
  } else {
    w.instances = 6.97e5;
    w.features_a = 11500 * parties_a;
    w.features_b = 11500;
    w.density = 0.0015;
  }
  w.parties_a = parties_a;
  SimFlags all;
  all.blaster = all.reordered = all.optimistic = all.packing = true;
  return SimulateTree(w, all, CostModel::PaperScale()).total_seconds;
}

}  // namespace
}  // namespace vf2boost

int main() {
  using namespace vf2boost;
  using bench::Fmt;

  std::printf("== Table 6: #parties scaling ==\n");
  std::printf("paper reference: 3 parties 0.93-0.96x, 4 parties 0.90-0.93x;"
              " AUC rises with parties\n");

  const std::vector<double> auc_eps = MultiPartyAuc("epsilon", 0.02);
  const std::vector<double> auc_rcv = MultiPartyAuc("rcv1", 0.008);

  const std::vector<int> widths = {13, 12, 12, 12, 12};
  bench::PrintRow({"#Parties", "speed eps", "speed rcv1", "AUC eps",
                   "AUC rcv1"},
                  widths);
  bench::PrintRule(widths);
  bench::PrintRow({"Party B only", "-", "-", Fmt("%.3f", auc_eps[0]),
                   Fmt("%.3f", auc_rcv[0])},
                  widths);
  const double base_eps = SimSpeed("epsilon", 1);
  const double base_rcv = SimSpeed("rcv1", 1);
  for (int parties = 2; parties <= 4; ++parties) {
    const double a = static_cast<double>(parties - 1);
    bench::PrintRow(
        {std::to_string(parties), Fmt("%.2fx", base_eps / SimSpeed("epsilon", a)),
         Fmt("%.2fx", base_rcv / SimSpeed("rcv1", a)),
         Fmt("%.3f", auc_eps[static_cast<size_t>(parties) - 1]),
         Fmt("%.3f", auc_rcv[static_cast<size_t>(parties) - 1])},
        widths);
  }
  std::printf("\n");
  return 0;
}
