// Figures 4 and 5: Gantt charts of root-node processing (existing protocol
// vs blaster-style encryption) and of whole-tree processing (existing
// protocol vs optimistic node-splitting), rendered from the calibrated
// event simulator at the paper's scale.

#include <cstdio>

#include "sim/cost_model.h"
#include "sim/gantt.h"
#include "sim/protocol_sim.h"

namespace vf2boost {
namespace {

void Figure4() {
  SimWorkload w;
  w.instances = 2.5e6;
  w.features_a = 25000;
  w.features_b = 25000;
  w.density = 0.002;
  const CostModel cost = CostModel::PaperScale();

  std::printf("== Figure 4: root node, existing protocol ==\n");
  SimReport base = SimulateRootNode(w, SimFlags{}, cost);
  std::printf("%s(total %.0fs)\n\n", RenderGantt(*base.sim, 90).c_str(),
              base.total_seconds);

  std::printf("== Figure 4: root node, blaster-style encryption ==\n");
  SimFlags blaster;
  blaster.blaster = true;
  SimReport b = SimulateRootNode(w, blaster, cost);
  std::printf("%s(total %.0fs, %.2fx)\n\n", RenderGantt(*b.sim, 90).c_str(),
              b.total_seconds, base.total_seconds / b.total_seconds);
}

void Figure5() {
  SimWorkload w;
  w.instances = 2.5e6;
  w.features_a = 25000;
  w.features_b = 25000;
  w.density = 0.002;
  w.layers = 5;  // fewer layers keeps the chart legible
  const CostModel cost = CostModel::PaperScale();

  std::printf("== Figure 5: tree processing, existing protocol ==\n");
  SimReport base = SimulateTree(w, SimFlags{}, cost);
  std::printf("%s(total %.0fs)\n\n", RenderGantt(*base.sim, 90).c_str(),
              base.total_seconds);

  std::printf("== Figure 5: tree processing, optimistic node-splitting ==\n");
  SimFlags opt;
  opt.optimistic = true;
  opt.blaster = true;
  SimReport o = SimulateTree(w, opt, cost);
  std::printf("%s(total %.0fs, %.2fx)\n\n", RenderGantt(*o.sim, 90).c_str(),
              o.total_seconds, base.total_seconds / o.total_seconds);
}

}  // namespace
}  // namespace vf2boost

int main() {
  vf2boost::Figure4();
  vf2boost::Figure5();
  return 0;
}
