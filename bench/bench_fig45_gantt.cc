// Figures 4 and 5: Gantt charts of root-node processing (existing protocol
// vs blaster-style encryption) and of whole-tree processing (existing
// protocol vs optimistic node-splitting), rendered from the calibrated
// event simulator at the paper's scale.
//
// With --real the same figures are rendered from an actual traced training
// run (small scale, real Paillier): an obs::TraceRecorder captures the
// engines' spans and the text gantt shows the measured overlap next to the
// simulator's prediction.

#include <cstdio>

#include "bench/bench_util.h"
#include "data/synthetic.h"
#include "fed/fed_trainer.h"
#include "obs/trace.h"
#include "obs/trace_gantt.h"
#include "sim/cost_model.h"
#include "sim/gantt.h"
#include "sim/protocol_sim.h"

namespace vf2boost {
namespace {

void Figure4() {
  SimWorkload w;
  w.instances = 2.5e6;
  w.features_a = 25000;
  w.features_b = 25000;
  w.density = 0.002;
  const CostModel cost = CostModel::PaperScale();

  std::printf("== Figure 4: root node, existing protocol ==\n");
  SimReport base = SimulateRootNode(w, SimFlags{}, cost);
  std::printf("%s(total %.0fs)\n\n", RenderGantt(*base.sim, 90).c_str(),
              base.total_seconds);

  std::printf("== Figure 4: root node, blaster-style encryption ==\n");
  SimFlags blaster;
  blaster.blaster = true;
  SimReport b = SimulateRootNode(w, blaster, cost);
  std::printf("%s(total %.0fs, %.2fx)\n\n", RenderGantt(*b.sim, 90).c_str(),
              b.total_seconds, base.total_seconds / b.total_seconds);
}

void Figure5() {
  SimWorkload w;
  w.instances = 2.5e6;
  w.features_a = 25000;
  w.features_b = 25000;
  w.density = 0.002;
  w.layers = 5;  // fewer layers keeps the chart legible
  const CostModel cost = CostModel::PaperScale();

  std::printf("== Figure 5: tree processing, existing protocol ==\n");
  SimReport base = SimulateTree(w, SimFlags{}, cost);
  std::printf("%s(total %.0fs)\n\n", RenderGantt(*base.sim, 90).c_str(),
              base.total_seconds);

  std::printf("== Figure 5: tree processing, optimistic node-splitting ==\n");
  SimFlags opt;
  opt.optimistic = true;
  opt.blaster = true;
  SimReport o = SimulateTree(w, opt, cost);
  std::printf("%s(total %.0fs, %.2fx)\n\n", RenderGantt(*o.sim, 90).c_str(),
              o.total_seconds, base.total_seconds / o.total_seconds);
}

// The measured counterpart: trains for real (small scale, real Paillier)
// with a TraceRecorder installed and renders the captured spans as the same
// kind of text gantt. Party rows come from the trace itself (pid = party),
// so what prints is the overlap that actually happened — encrypt slices
// interleaving with A's builds under blaster, opt_split/rollback blocks
// under the optimistic protocol.
void RealTracedRun(bool optimistic) {
  SyntheticSpec sspec;
  sspec.rows = 400;
  sspec.cols = 16;
  sspec.density = 0.5;
  sspec.seed = 7;
  bench::BenchFixture f = bench::MakeBenchFixture(sspec, {0.5, 0.5}, 7);

  FedConfig config = optimistic ? FedConfig::Vf2Boost() : FedConfig::VfGbdt();
  config.blaster = true;
  config.blaster_batch = 128;
  config.paillier_bits = 256;
  config.gbdt.num_trees = 1;
  config.gbdt.num_layers = 4;

  obs::TraceRecorder recorder;
  recorder.Install();
  auto result = FedTrainer(config).Train(f.shards);
  obs::TraceRecorder::Uninstall();
  if (!result.ok()) {
    std::fprintf(stderr, "traced run failed: %s\n",
                 result.status().ToString().c_str());
    return;
  }
  std::printf("== Measured: traced run, %s (%zu rows, 1 tree) ==\n",
              optimistic ? "vf2boost (optimistic)" : "vfgbdt (sequential)",
              sspec.rows);
  std::printf("%s\n", RenderTraceGantt(recorder, 90).c_str());
}

}  // namespace
}  // namespace vf2boost

int main(int argc, char** argv) {
  const bool real =
      vf2boost::bench::TakeBoolFlag(&argc, argv, "--real");
  vf2boost::Figure4();
  vf2boost::Figure5();
  if (real) {
    vf2boost::RealTracedRun(/*optimistic=*/false);
    vf2boost::RealTracedRun(/*optimistic=*/true);
  }
  return 0;
}
