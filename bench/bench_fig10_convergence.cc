// Figure 10: logistic loss versus running time on the two small datasets
// (census, a9a), comparing the federated systems against XGBoost-style
// plain GBDT trained (a) on co-located data and (b) on Party B's columns
// only. We emit the loss-vs-time series for each system; the paper's plot
// is these series drawn as curves.
//
// Substitution note: census/a9a are replaced by shape-matched synthetic
// stand-ins (same N/D/density, Table 3), scaled by 0.2 so the real-crypto
// runs finish in seconds; SecureBoost/Fedlearner (Python systems) are
// represented by our own unoptimized VF-GBDT baseline per paper §6.3.

#include <cstdio>

#include "bench/bench_util.h"
#include "fed/fed_trainer.h"
#include "gbdt/trainer.h"
#include "metrics/metrics.h"

namespace vf2boost {
namespace {

constexpr size_t kTrees = 8;

void PrintSeries(const char* system, const std::vector<EvalRecord>& log) {
  for (const EvalRecord& rec : log) {
    std::printf("%-12s tree=%2zu time=%8.3fs train_logloss=%.4f", system,
                rec.tree_index + 1, rec.elapsed_seconds, rec.train_loss);
    if (rec.valid_auc > 0) {
      std::printf(" valid_logloss=%.4f valid_auc=%.4f", rec.valid_loss,
                  rec.valid_auc);
    }
    std::printf("\n");
  }
}

// Fills valid metrics for a federated log post-hoc using the joint model.
void AddValidMetrics(const GbdtModel& joint, const Dataset& valid,
                     std::vector<EvalRecord>* log) {
  for (EvalRecord& rec : *log) {
    const auto scores = joint.PredictRaw(valid.features, rec.tree_index + 1);
    rec.valid_loss = LogLoss(scores, valid.labels);
    rec.valid_auc = Auc(scores, valid.labels);
  }
}

void RunDataset(const char* name) {
  auto spec = PaperDatasetSpec(name, 0.2);
  if (!spec.ok()) {
    std::fprintf(stderr, "%s\n", spec.status().ToString().c_str());
    return;
  }
  std::printf("== Figure 10: %s-shaped data (N=%zu, D=%zu, density=%.2f%%) "
              "==\n",
              name, spec->rows, spec->cols, 100 * spec->density);
  bench::BenchFixture f = bench::MakeBenchFixture(*spec, {0.5, 0.5}, 101);

  GbdtParams params;
  params.num_trees = kTrees;
  params.num_layers = 5;
  params.max_bins = 20;

  // XGBoost stand-in, co-located.
  {
    GbdtTrainer plain(params);
    std::vector<EvalRecord> log;
    auto model = plain.Train(f.train, &f.valid, &log);
    if (model.ok()) PrintSeries("XGB-joint", log);
  }
  // XGBoost stand-in, Party B columns only.
  {
    Dataset b_train = f.shards.back();
    Dataset b_valid;
    b_valid.features =
        f.valid.features.SelectColumns(f.spec.party_columns[1]);
    b_valid.labels = f.valid.labels;
    GbdtTrainer plain(params);
    std::vector<EvalRecord> log;
    auto model = plain.Train(b_train, &b_valid, &log);
    if (model.ok()) PrintSeries("XGB-B-only", log);
  }
  // Federated systems (real Paillier).
  struct System {
    const char* name;
    FedConfig config;
  };
  FedConfig vf_gbdt = FedConfig::VfGbdt();
  FedConfig vf2boost = FedConfig::Vf2Boost();
  FedConfig vf_mock = FedConfig::VfMock();
  for (System sys : {System{"VF-MOCK", vf_mock}, System{"VF-GBDT", vf_gbdt},
                     System{"VF2Boost", vf2boost}}) {
    sys.config.gbdt = params;
    sys.config.paillier_bits = 256;
    auto result = FedTrainer(sys.config).Train(f.shards);
    if (!result.ok()) {
      std::fprintf(stderr, "%s failed: %s\n", sys.name,
                   result.status().ToString().c_str());
      continue;
    }
    auto joint = result->ToJointModel(f.spec);
    if (!joint.ok()) continue;
    AddValidMetrics(joint.value(), f.valid, &result->log);
    PrintSeries(sys.name, result->log);
  }
  std::printf("\n");
}

}  // namespace
}  // namespace vf2boost

int main() {
  vf2boost::RunDataset("census");
  vf2boost::RunDataset("a9a");
  return 0;
}
