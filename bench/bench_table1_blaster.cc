// Table 1: breakdown of the blaster-style encryption scheme and the
// re-ordered histogram accumulation on ROOT-NODE processing.
//
// Part 1 measures real wall-clock runs of this library at laptop scale
// (256-bit keys, thousands of instances). Part 2 replays the paper's exact
// configuration (N in {2.5M, 5M, 10M}, 25K+25K features, S = 2048, 8
// workers, 300 Mbps) through the calibrated event simulator.

#include <algorithm>
#include <cstdio>

#include "bench/bench_util.h"
#include "common/timer.h"
#include "fed/fed_trainer.h"
#include "sim/protocol_sim.h"

namespace vf2boost {
namespace {

using bench::Fmt;
using bench::PrintRow;
using bench::PrintRule;

// Runs one tree with num_layers=2 so the run is dominated by root-node
// processing (the Table 1 regime), and returns total seconds + phase times.
struct RootRun {
  double total = 0;
  double enc = 0;
  double hadd = 0;
  double scalings = 0;
};

RootRun RunRoot(const bench::BenchFixture& f, bool blaster, bool reordered) {
  FedConfig config;
  config.paillier_bits = 256;
  config.blaster = blaster;
  config.blaster_batch = 512;
  config.reordered = reordered;
  config.gbdt.num_trees = 1;
  config.gbdt.num_layers = 2;
  config.gbdt.max_bins = 20;

  Stopwatch clock;
  auto result = FedTrainer(config).Train(f.shards);
  RootRun run;
  run.total = clock.ElapsedSeconds();
  if (!result.ok()) {
    std::fprintf(stderr, "run failed: %s\n", result.status().ToString().c_str());
    std::abort();
  }
  run.enc = result->stats.party_b.encrypt;
  run.hadd = result->stats.party_a.build_hist;
  run.scalings = static_cast<double>(result->stats.scalings);
  return run;
}

// Median-of-3 by total wall time: single runs at these sizes jitter by a few
// percent (thread scheduling, allocator state), which is enough to flip a
// ~1.1x speedup ratio below 1.0 and trip the perf gate on noise alone.
RootRun RunRootMedian(const bench::BenchFixture& f, bool blaster,
                      bool reordered) {
  RootRun runs[3];
  for (RootRun& r : runs) r = RunRoot(f, blaster, reordered);
  std::sort(std::begin(runs), std::end(runs),
            [](const RootRun& a, const RootRun& b) { return a.total < b.total; });
  return runs[1];
}

void RealPart(bool smoke, bench::JsonWriter* json) {
  std::printf(
      "== Table 1 (real runs, scaled: 256-bit keys, D=20+20 features) ==\n");
  const std::vector<int> widths = {10, 10, 10, 10, 12, 12, 14};
  PrintRow({"#Instances", "Base total", "Base enc", "Base hadd", "+Blaster",
            "+Reordered", "+Both"},
           widths);
  PrintRule(widths);
  // Smoke mode (CI): one small size so the job finishes in seconds while
  // still exercising every protocol variant end to end.
  const std::vector<size_t> sizes =
      smoke ? std::vector<size_t>{1000} : std::vector<size_t>{2500, 5000, 10000};
  for (size_t n : sizes) {
    SyntheticSpec spec;
    spec.rows = n + n / 4;  // 80% train split lands near n
    spec.cols = 40;
    spec.density = 0.2;
    spec.seed = 7;
    bench::BenchFixture f = bench::MakeBenchFixture(spec, {0.5, 0.5}, 11);

    const RootRun base = RunRootMedian(f, false, false);
    const RootRun blaster = RunRootMedian(f, true, false);
    const RootRun reordered = RunRootMedian(f, false, true);
    const RootRun both = RunRootMedian(f, true, true);
    PrintRow({std::to_string(n), Fmt("%.2fs", base.total),
              Fmt("%.2fs", base.enc), Fmt("%.2fs", base.hadd),
              Fmt("%.2fx", base.total / blaster.total),
              Fmt("%.2fx", base.total / reordered.total),
              Fmt("%.2fx", base.total / both.total)},
             widths);
    if (json != nullptr) {
      const std::string prefix = "table1/real/n=" + std::to_string(n);
      json->Add(prefix + "/base_total", base.total, "s");
      json->Add(prefix + "/base_encrypt", base.enc, "s");
      json->Add(prefix + "/speedup_blaster", base.total / blaster.total, "x");
      json->Add(prefix + "/speedup_reordered", base.total / reordered.total,
                "x");
      json->Add(prefix + "/speedup_both", base.total / both.total, "x");
    }
  }
  std::printf("\n");
}

void SimulatedPart(bench::JsonWriter* json) {
  std::printf(
      "== Table 1 (simulated at paper scale: S=2048, D=25K+25K, 8 workers, "
      "300 Mbps) ==\n");
  std::printf("paper reference row (N=2.5M): Enc 116 / Comm 44 / HAdd 248 / "
              "Total 398; +Blaster 1.55x, +Reordered 1.17x, +Both 2.25x\n");
  const CostModel cost = CostModel::PaperScale();
  const std::vector<int> widths = {10, 6, 7, 7, 8, 12, 12, 14};
  PrintRow({"#Instances", "Enc", "Comm", "HAdd", "Total", "+Blaster",
            "+Reordered", "+Both"},
           widths);
  PrintRule(widths);
  for (double n : {2.5e6, 5e6, 10e6}) {
    SimWorkload w;
    w.instances = n;
    w.features_a = 25000;
    w.features_b = 25000;
    w.density = 0.002;
    SimFlags none, b, r, br;
    b.blaster = true;
    r.reordered = true;
    br.blaster = br.reordered = true;
    const SimReport base = SimulateRootNode(w, none, cost);
    const SimReport blaster = SimulateRootNode(w, b, cost);
    const SimReport reordered = SimulateRootNode(w, r, cost);
    const SimReport both = SimulateRootNode(w, br, cost);
    PrintRow({Fmt("%.1fM", n / 1e6), Fmt("%.0f", base.enc_seconds),
              Fmt("%.0f", base.comm_seconds), Fmt("%.0f", base.hadd_seconds),
              Fmt("%.0f", base.total_seconds),
              Fmt("%.0f ", blaster.total_seconds) +
                  Fmt("(%.2fx)", base.total_seconds / blaster.total_seconds),
              Fmt("%.0f ", reordered.total_seconds) +
                  Fmt("(%.2fx)", base.total_seconds / reordered.total_seconds),
              Fmt("%.0f ", both.total_seconds) +
                  Fmt("(%.2fx)", base.total_seconds / both.total_seconds)},
             widths);
    if (json != nullptr) {
      const std::string prefix =
          "table1/sim/n=" + Fmt("%.1fM", n / 1e6);
      json->Add(prefix + "/base_total", base.total_seconds, "s");
      json->Add(prefix + "/speedup_blaster",
                base.total_seconds / blaster.total_seconds, "x");
      json->Add(prefix + "/speedup_reordered",
                base.total_seconds / reordered.total_seconds, "x");
      json->Add(prefix + "/speedup_both",
                base.total_seconds / both.total_seconds, "x");
    }
  }
  std::printf("\n");
}

}  // namespace
}  // namespace vf2boost

int main(int argc, char** argv) {
  const std::string json_path =
      vf2boost::bench::TakeStringFlag(&argc, argv, "--json");
  const bool smoke = vf2boost::bench::TakeBoolFlag(&argc, argv, "--smoke");
  vf2boost::bench::JsonWriter json;
  vf2boost::bench::JsonWriter* jp = json_path.empty() ? nullptr : &json;
  vf2boost::RealPart(smoke, jp);
  vf2boost::SimulatedPart(jp);
  if (!json_path.empty() && !json.WriteTo(json_path)) return 1;
  return 0;
}
