// Table 5: scalability w.r.t. the number of workers per party, scaled by the
// training speed at 4 workers. This host has one core, so worker scaling is
// replayed through the calibrated event simulator at the paper's dataset
// shapes (susy, epsilon, rcv1, synthesis from Table 3), all optimizations on.

#include <cstdio>

#include "bench/bench_util.h"
#include "sim/protocol_sim.h"

namespace vf2boost {
namespace {

using bench::Fmt;
using bench::PrintRow;
using bench::PrintRule;

struct Shape {
  const char* name;
  double n, d, density;
};

}  // namespace
}  // namespace vf2boost

int main() {
  using namespace vf2boost;
  using bench::Fmt;
  const Shape shapes[] = {{"susy", 5e6, 18, 1.0},
                          {"epsilon", 4e5, 2000, 1.0},
                          {"rcv1", 6.97e5, 46000, 0.0015},
                          {"synthesis", 1e7, 50000, 0.002}};
  const CostModel cost = CostModel::PaperScale();

  std::printf("== Table 5: speedup vs #workers (simulated, scaled to 4 "
              "workers) ==\n");
  std::printf("paper reference: 8 workers 1.40-1.65x, 16 workers "
              "1.85-2.23x\n");
  const std::vector<int> widths = {9, 10, 10, 10, 10};
  bench::PrintRow({"#Workers", "susy", "epsilon", "rcv1", "synthesis"},
                  widths);
  bench::PrintRule(widths);

  double base[4] = {0, 0, 0, 0};
  for (double workers : {4.0, 8.0, 16.0}) {
    std::vector<std::string> row = {Fmt("%.0f", workers)};
    for (int i = 0; i < 4; ++i) {
      SimWorkload w;
      w.instances = shapes[i].n;
      w.features_a = shapes[i].d / 2;
      w.features_b = shapes[i].d / 2;
      w.density = shapes[i].density;
      w.workers = workers;
      SimFlags all;
      all.blaster = all.reordered = all.optimistic = all.packing = true;
      const double t = SimulateTree(w, all, cost).total_seconds;
      if (workers == 4.0) base[i] = t;
      row.push_back(Fmt("%.2fx", base[i] / t));
    }
    bench::PrintRow(row, widths);
  }
  std::printf("\n");
  return 0;
}
