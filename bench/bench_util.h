#ifndef VF2BOOST_BENCH_BENCH_UTIL_H_
#define VF2BOOST_BENCH_BENCH_UTIL_H_

#include <cstdio>
#include <string>
#include <vector>

#include "data/partition.h"
#include "data/synthetic.h"

namespace vf2boost {
namespace bench {

/// Prints a Markdown-ish table row.
inline void PrintRow(const std::vector<std::string>& cells,
                     const std::vector<int>& widths) {
  std::string line = "|";
  for (size_t i = 0; i < cells.size(); ++i) {
    char buf[256];
    std::snprintf(buf, sizeof(buf), " %-*s |", widths[i], cells[i].c_str());
    line += buf;
  }
  std::printf("%s\n", line.c_str());
}

inline void PrintRule(const std::vector<int>& widths) {
  std::string line = "|";
  for (int w : widths) line += std::string(static_cast<size_t>(w) + 2, '-') + "|";
  std::printf("%s\n", line.c_str());
}

inline std::string Fmt(const char* fmt, double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), fmt, v);
  return buf;
}

/// A train/valid split plus a vertical partition, the common fixture of the
/// end-to-end benches.
struct BenchFixture {
  Dataset train;
  Dataset valid;
  VerticalSplitSpec spec;
  std::vector<Dataset> shards;
};

inline BenchFixture MakeBenchFixture(const SyntheticSpec& sspec,
                                     const std::vector<double>& fractions,
                                     uint64_t seed) {
  Dataset all = GenerateSynthetic(sspec);
  BenchFixture f;
  Rng rng(seed);
  TrainValidSplit(all, 0.8, &rng, &f.train, &f.valid);
  f.spec = SplitColumnsRandomly(sspec.cols, fractions, &rng);
  auto shards =
      PartitionVertically(f.train, f.spec, fractions.size() - 1);
  if (!shards.ok()) {
    std::fprintf(stderr, "partition failed: %s\n",
                 shards.status().ToString().c_str());
    std::abort();
  }
  f.shards = std::move(shards).value();
  return f;
}

}  // namespace bench
}  // namespace vf2boost

#endif  // VF2BOOST_BENCH_BENCH_UTIL_H_
