#ifndef VF2BOOST_BENCH_BENCH_UTIL_H_
#define VF2BOOST_BENCH_BENCH_UTIL_H_

#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "data/partition.h"
#include "data/synthetic.h"
#include "obs/metrics_registry.h"

namespace vf2boost {
namespace bench {

/// Collects named metrics and writes them as a flat JSON document:
///   {"benchmarks": [{"name": "...", "value": 123.4, "unit": "ops/s"}, ...]}
/// Thin shim over obs::MetricsRegistry — the registry owns the JSON shape,
/// so bench output and --metrics-out from the training tools stay
/// byte-level compatible for the same CI diff scripts.
class JsonWriter {
 public:
  void Add(const std::string& name, double value, const std::string& unit) {
    registry_.SetValue(name, value, unit);
  }

  bool WriteTo(const std::string& path) const {
    if (!registry_.WriteJson(path)) return false;
    std::printf("wrote %zu metrics to %s\n", registry_.size(), path.c_str());
    return true;
  }

  bool empty() const { return registry_.empty(); }

 private:
  obs::MetricsRegistry registry_;
};

/// Extracts `--flag value` or `--flag=value` from argv (removing the consumed
/// elements so later parsers — e.g. benchmark::Initialize — never see them).
/// Returns the empty string when the flag is absent.
inline std::string TakeStringFlag(int* argc, char** argv, const char* flag) {
  const std::string eq = std::string(flag) + "=";
  for (int i = 1; i < *argc; ++i) {
    std::string value;
    int consumed = 0;
    if (std::strcmp(argv[i], flag) == 0 && i + 1 < *argc) {
      value = argv[i + 1];
      consumed = 2;
    } else if (std::strncmp(argv[i], eq.c_str(), eq.size()) == 0) {
      value = argv[i] + eq.size();
      consumed = 1;
    }
    if (consumed > 0) {
      for (int j = i + consumed; j < *argc; ++j) argv[j - consumed] = argv[j];
      *argc -= consumed;
      return value;
    }
  }
  return "";
}

/// Extracts a boolean `--flag` from argv; true when present.
inline bool TakeBoolFlag(int* argc, char** argv, const char* flag) {
  for (int i = 1; i < *argc; ++i) {
    if (std::strcmp(argv[i], flag) == 0) {
      for (int j = i + 1; j < *argc; ++j) argv[j - 1] = argv[j];
      *argc -= 1;
      return true;
    }
  }
  return false;
}

/// Prints a Markdown-ish table row.
inline void PrintRow(const std::vector<std::string>& cells,
                     const std::vector<int>& widths) {
  std::string line = "|";
  for (size_t i = 0; i < cells.size(); ++i) {
    char buf[256];
    std::snprintf(buf, sizeof(buf), " %-*s |", widths[i], cells[i].c_str());
    line += buf;
  }
  std::printf("%s\n", line.c_str());
}

inline void PrintRule(const std::vector<int>& widths) {
  std::string line = "|";
  for (int w : widths) line += std::string(static_cast<size_t>(w) + 2, '-') + "|";
  std::printf("%s\n", line.c_str());
}

inline std::string Fmt(const char* fmt, double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), fmt, v);
  return buf;
}

/// A train/valid split plus a vertical partition, the common fixture of the
/// end-to-end benches.
struct BenchFixture {
  Dataset train;
  Dataset valid;
  VerticalSplitSpec spec;
  std::vector<Dataset> shards;
};

inline BenchFixture MakeBenchFixture(const SyntheticSpec& sspec,
                                     const std::vector<double>& fractions,
                                     uint64_t seed) {
  Dataset all = GenerateSynthetic(sspec);
  BenchFixture f;
  Rng rng(seed);
  TrainValidSplit(all, 0.8, &rng, &f.train, &f.valid);
  f.spec = SplitColumnsRandomly(sspec.cols, fractions, &rng);
  auto shards =
      PartitionVertically(f.train, f.spec, fractions.size() - 1);
  if (!shards.ok()) {
    std::fprintf(stderr, "partition failed: %s\n",
                 shards.status().ToString().c_str());
    std::abort();
  }
  f.shards = std::move(shards).value();
  return f;
}

}  // namespace bench
}  // namespace vf2boost

#endif  // VF2BOOST_BENCH_BENCH_UTIL_H_
