// Extension bench (paper §5.1/§5.2 Discussions): both VF²Boost cryptography
// customizations applied to vertical federated LOGISTIC REGRESSION — the
// paper's stated future work. Measures, per protocol level, wall-clock per
// epoch plus the crypto op counts the techniques attack.

#include <cstdio>

#include "bench/bench_util.h"
#include "common/timer.h"
#include "fedlr/fed_lr.h"
#include "metrics/metrics.h"

namespace vf2boost {
namespace {

using bench::Fmt;
using bench::PrintRow;
using bench::PrintRule;

struct LrRun {
  double seconds = 0;
  size_t scalings = 0;
  size_t decryptions = 0;
  double auc = 0;
};

LrRun Run(const bench::BenchFixture& f, bool reordered, bool packing) {
  FedLrConfig config;
  config.paillier_bits = 512;
  config.reordered = reordered;
  config.packing = packing;
  config.lr.epochs = 2;
  config.lr.batch_size = 256;
  config.lr.learning_rate = 0.3;

  Stopwatch clock;
  auto result =
      FedLrTrainer(config).Train(f.shards[0], f.shards[1]);
  LrRun run;
  run.seconds = clock.ElapsedSeconds();
  if (!result.ok()) {
    std::fprintf(stderr, "LR run failed: %s\n",
                 result.status().ToString().c_str());
    std::abort();
  }
  run.scalings = result->stats.scalings;
  run.decryptions = result->stats.decryptions;
  auto joint = result->ToJointModel(f.spec);
  if (joint.ok()) {
    run.auc = Auc(joint->PredictRaw(f.valid.features), f.valid.labels);
  }
  return run;
}

}  // namespace
}  // namespace vf2boost

int main() {
  using namespace vf2boost;
  using bench::Fmt;

  std::printf("== Extension: §5 techniques on vertical federated LR "
              "(512-bit keys, N=2000, D=10+10) ==\n");
  SyntheticSpec spec;
  spec.rows = 1500;
  spec.cols = 20;
  spec.density = 0.5;
  spec.seed = 404;
  bench::BenchFixture f = bench::MakeBenchFixture(spec, {0.5, 0.5}, 405);

  const std::vector<int> widths = {22, 10, 10, 8, 8};
  bench::PrintRow({"protocol", "scalings", "decrypts", "time", "AUC"},
                  widths);
  bench::PrintRule(widths);
  struct Level {
    const char* name;
    bool reordered, packing;
  };
  for (const Level& level :
       {Level{"baseline", false, false}, Level{"+reordered", true, false},
        Level{"+packing", false, true},
        Level{"+reordered+packing", true, true}}) {
    const LrRun run = Run(f, level.reordered, level.packing);
    bench::PrintRow({level.name, std::to_string(run.scalings),
                     std::to_string(run.decryptions),
                     Fmt("%.2fs", run.seconds), Fmt("%.3f", run.auc)},
                    widths);
  }
  std::printf("(the §5.1/§5.2 claims transfer: scalings collapse with "
              "re-ordering; decryptions shrink with packing)\n\n");
  return 0;
}
