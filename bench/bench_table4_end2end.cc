// Tables 3 & 4: end-to-end evaluation. For each (scaled) dataset of the
// paper's Table 3 we report the average per-tree training time of
//   XGB (plain GBDT on co-located data), VF-MOCK (federated protocol,
//   plaintext arithmetic), VF-GBDT (unoptimized federated), VF2Boost
// plus validation AUC of the federated model vs the co-located and
// Party-B-only plain models.
//
// Substitution note: datasets are synthetic stand-ins with Table 3's shape
// scaled down (this box is one core; the paper used two 8-node clusters).
// The ordering XGB << VF-MOCK << VF2Boost < VF-GBDT and the AUC pattern
// (federated ~ co-located > B-only) are the reproduced results.

#include <cstdio>

#include "bench/bench_util.h"
#include "common/timer.h"
#include "fed/fed_trainer.h"
#include "gbdt/trainer.h"
#include "metrics/metrics.h"

namespace vf2boost {
namespace {

using bench::Fmt;
using bench::PrintRow;
using bench::PrintRule;

constexpr size_t kTrees = 3;

struct DatasetChoice {
  const char* name;
  double scale;
};

void PrintTable3(const std::vector<DatasetChoice>& datasets) {
  std::printf("== Table 3: dataset inventory (scaled synthetic stand-ins) ==\n");
  const std::vector<int> widths = {10, 11, 10, 9};
  PrintRow({"Dataset", "#Instances", "#Features", "Density"}, widths);
  PrintRule(widths);
  for (const DatasetChoice& d : datasets) {
    auto spec = PaperDatasetSpec(d.name, d.scale);
    if (!spec.ok()) continue;
    PrintRow({d.name, std::to_string(spec->rows), std::to_string(spec->cols),
              Fmt("%.2f%%", 100 * spec->density)},
             widths);
  }
  std::printf("\n");
}

void RunTable4(const std::vector<DatasetChoice>& datasets) {
  std::printf("== Table 4: average per-tree time and AUC ==\n");
  const std::vector<int> widths = {10, 9, 10, 10, 10, 8, 9, 9};
  PrintRow({"Dataset", "XGB", "VF-MOCK", "VF-GBDT", "VF2Boost", "FedAUC",
            "JointAUC", "BonlyAUC"},
           widths);
  PrintRule(widths);

  for (const DatasetChoice& d : datasets) {
    auto spec = PaperDatasetSpec(d.name, d.scale);
    if (!spec.ok()) continue;
    // Keep the scaled stand-in learnable: at a few thousand rows, tens of
    // thousands of columns would starve every column of samples. Cap the
    // dimensionality and keep >= 6 expected nonzeros per row.
    spec->cols = std::min(spec->cols, spec->rows / 16);
    spec->density =
        std::max(spec->density, 6.0 / static_cast<double>(spec->cols));
    bench::BenchFixture f = bench::MakeBenchFixture(*spec, {0.5, 0.5}, 202);

    GbdtParams params;
    params.num_trees = kTrees;
    params.num_layers = 5;
    params.max_bins = 20;

    // AUC is measured with a longer ensemble (model quality needs the full
    // boosting run; timing does not) — crypto-independent, so mock suffices.
    GbdtParams auc_params = params;
    auc_params.num_trees = 12;

    // Plain co-located (XGB stand-in): time at kTrees, AUC at 12 trees.
    Stopwatch clock;
    GbdtTrainer plain(params);
    auto timing_model = plain.Train(f.train);
    const double xgb_time =
        timing_model.ok() ? clock.ElapsedSeconds() / kTrees : 0;
    GbdtTrainer plain_auc(auc_params);
    auto joint_model = plain_auc.Train(f.train);
    const double joint_auc =
        joint_model.ok()
            ? Auc(joint_model->PredictRaw(f.valid.features), f.valid.labels)
            : 0;

    // Party-B-only plain.
    Dataset b_train = f.shards.back();
    auto b_model = plain_auc.Train(b_train);
    Dataset b_valid;
    b_valid.features =
        f.valid.features.SelectColumns(f.spec.party_columns[1]);
    const double b_auc =
        b_model.ok() ? Auc(b_model->PredictRaw(b_valid.features),
                           f.valid.labels)
                     : 0;

    // Federated AUC from a 12-tree mock run.
    double fed_auc = 0;
    {
      FedConfig config = FedConfig::Vf2Boost();
      config.mock_crypto = true;
      config.gbdt = auc_params;
      auto result = FedTrainer(config).Train(f.shards);
      if (result.ok()) {
        auto joint = result->ToJointModel(f.spec);
        if (joint.ok()) {
          fed_auc = Auc(joint->PredictRaw(f.valid.features), f.valid.labels);
        }
      }
    }

    auto fed_time = [&](FedConfig config) {
      config.gbdt = params;
      config.paillier_bits = 256;
      // At 256-bit demo keys a packed cipher holds only ~3 slots, which
      // does not amortize the packing squarings; let A fall back to raw
      // (the simulated tables cover the 2048-bit regime where it pays).
      config.min_pack_slots = 8;
      Stopwatch c;
      auto result = FedTrainer(config).Train(f.shards);
      if (!result.ok()) {
        std::fprintf(stderr, "fed run failed: %s\n",
                     result.status().ToString().c_str());
        return std::pair<double, double>{0, 0};
      }
      double auc = 0;
      auto joint = result->ToJointModel(f.spec);
      if (joint.ok()) {
        auc = Auc(joint->PredictRaw(f.valid.features), f.valid.labels);
      }
      return std::pair<double, double>{c.ElapsedSeconds() / kTrees, auc};
    };

    const auto [mock_time, mock_auc] = fed_time(FedConfig::VfMock());
    const auto [vfgbdt_time, vfgbdt_auc] = fed_time(FedConfig::VfGbdt());
    const auto [vf2_time, vf2_auc] = fed_time(FedConfig::Vf2Boost());
    (void)mock_auc;
    (void)vfgbdt_auc;
    (void)vf2_auc;

    PrintRow({d.name, Fmt("%.3fs", xgb_time), Fmt("%.3fs", mock_time),
              Fmt("%.3fs", vfgbdt_time), Fmt("%.3fs", vf2_time),
              Fmt("%.3f", fed_auc), Fmt("%.3f", joint_auc),
              Fmt("%.3f", b_auc)},
             widths);
  }
  std::printf(
      "\n(expected shape: XGB << VF-MOCK << VF2Boost <= VF-GBDT; FedAUC ~ "
      "JointAUC > BonlyAUC.\n NOTE: this host has ONE core, so the "
      "protocol-overlap part of VF2Boost's speedup cannot materialize in "
      "wall-clock here —\n see the simulated Tables 1/2 for the "
      "paper-scale overlap gains; the visible real gain is the re-ordered "
      "accumulation.)\n\n");
}

}  // namespace
}  // namespace vf2boost

int main() {
  const std::vector<vf2boost::DatasetChoice> datasets = {
      {"susy", 0.001},     {"epsilon", 0.005}, {"rcv1", 0.006},
      {"synthesis", 0.0004}, {"industry", 0.0001}};
  vf2boost::PrintTable3(datasets);
  vf2boost::RunTable4(datasets);
  return 0;
}
