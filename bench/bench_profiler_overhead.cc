// Sampling-profiler overhead bench: runs a deterministic CPU-bound workload
// with the profiler disabled and again at 99 Hz, and reports the relative
// wall-time overhead. DESIGN.md budgets <3% at 99 Hz and exactly 0% when
// disabled (no timers exist, SIGPROF never fires); CI gates on --check.
//
//   bench_profiler_overhead --json BENCH_profiler.json --check
//
// The workload mixes a single hot main-thread loop with pool-fanned tasks so
// both the per-thread timer path and the Submit-side phase-tag propagation
// are on the measured path.

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "common/threadpool.h"
#include "common/timer.h"
#include "obs/phase_tag.h"
#include "obs/profiler.h"

namespace vf2boost {
namespace {

using bench::Fmt;
using bench::PrintRow;
using bench::PrintRule;

// A hash loop the optimizer cannot elide; ~tens of ms per call so each
// measured run takes O(1s) and 99 Hz collects a few hundred samples.
uint64_t SpinChunk(uint64_t seed, int iters) {
  uint64_t h = 1469598103934665603ull ^ seed;
  for (int i = 0; i < iters; ++i) {
    h ^= static_cast<uint64_t>(i);
    h *= 1099511628211ull;
    h ^= h >> 29;
  }
  return h;
}

volatile uint64_t g_sink = 0;

double RunWorkload(ThreadPool* pool) {
  static const char* const kPhaseNames[] = {"encrypt", "build_hist",
                                            "find_split"};
  Stopwatch clock;
  uint64_t acc = 0;
  std::atomic<uint64_t> pool_acc{0};
  for (int round = 0; round < 24; ++round) {
    obs::ScopedPhaseTag phase(kPhaseNames[round % 3], round);
    // Main-thread slice.
    acc ^= SpinChunk(static_cast<uint64_t>(round), 4'000'000);
    // Pool slice: 8 tasks inherit the phase tag through Submit.
    for (int t = 0; t < 8; ++t) {
      pool->Submit([round, t, &pool_acc] {
        pool_acc.fetch_add(
            SpinChunk(static_cast<uint64_t>(round * 31 + t), 1'000'000),
            std::memory_order_relaxed);
      });
    }
    pool->Wait();
  }
  g_sink = acc ^ pool_acc.load(std::memory_order_relaxed);
  return clock.ElapsedSeconds();
}

// Interleaves off/on passes (rather than all-off-then-all-on) so slow drift
// — thermal, allocator state, scheduler — hits both sides equally, and takes
// the min of each side: the workload is deterministic, so noise only ever
// adds time and the minima are the cleanest estimates.
struct OverheadMeasurement {
  double off = 0;
  double on = 0;
  obs::ProfilerStats stats;  // accumulated over all on-passes
};

OverheadMeasurement MeasureInterleaved(ThreadPool* pool, int pairs, int hz) {
  OverheadMeasurement m;
  double best_off = 1e30, best_on = 1e30;
  for (int i = 0; i < pairs; ++i) {
    best_off = std::min(best_off, RunWorkload(pool));
    obs::ProfilerOptions opts;
    opts.hz = hz;
    obs::Profiler profiler(opts);
    if (!profiler.Start()) {
      std::fprintf(stderr, "profiler failed to start\n");
      std::exit(1);
    }
    best_on = std::min(best_on, RunWorkload(pool));
    profiler.Stop();
    const obs::ProfilerStats s = profiler.stats();
    m.stats.samples += s.samples;
    m.stats.dropped += s.dropped;
    m.stats.threads = std::max(m.stats.threads, s.threads);
  }
  m.off = best_off;
  m.on = best_on;
  return m;
}

}  // namespace
}  // namespace vf2boost

int main(int argc, char** argv) {
  using namespace vf2boost;
  const std::string json_path = bench::TakeStringFlag(&argc, argv, "--json");
  const bool check = bench::TakeBoolFlag(&argc, argv, "--check");
  const std::string max_pct_s =
      bench::TakeStringFlag(&argc, argv, "--max-overhead-pct");
  const double max_pct = max_pct_s.empty() ? 3.0 : std::atof(max_pct_s.c_str());

  ThreadPool pool(4);
  obs::SetThreadPartyTag("party_b");
  obs::ProfilerRegisterCurrentThread();

  // Warm-up: page in the workload and the pool before any timed pass.
  (void)RunWorkload(&pool);

  const int kPairs = 6;
  const OverheadMeasurement m = MeasureInterleaved(&pool, kPairs, /*hz=*/99);
  const double off = m.off;
  const double on = m.on;
  const obs::ProfilerStats stats = m.stats;

  const double overhead_pct = off > 0 ? 100.0 * (on - off) / off : 0.0;
  const double expected_hz =
      on > 0 ? static_cast<double>(stats.samples) / (kPairs * on) : 0.0;

  const std::vector<int> w = {26, 12};
  PrintRow({"metric", "value"}, w);
  PrintRule(w);
  PrintRow({"workload off (s)", Fmt("%.3f", off)}, w);
  PrintRow({"workload 99Hz (s)", Fmt("%.3f", on)}, w);
  PrintRow({"overhead (%)", Fmt("%.2f", overhead_pct)}, w);
  PrintRow({"samples", Fmt("%.0f", static_cast<double>(stats.samples))}, w);
  PrintRow({"dropped", Fmt("%.0f", static_cast<double>(stats.dropped))}, w);
  PrintRow({"threads armed", Fmt("%.0f", static_cast<double>(stats.threads))},
           w);
  PrintRow({"effective Hz/run", Fmt("%.1f", expected_hz)}, w);

  if (!json_path.empty()) {
    bench::JsonWriter writer;
    writer.Add("profiler/workload_off", off, "s");
    writer.Add("profiler/workload_on_99hz", on, "s");
    writer.Add("profiler/overhead_pct", overhead_pct, "%");
    writer.Add("profiler/samples", static_cast<double>(stats.samples),
               "samples");
    writer.Add("profiler/dropped", static_cast<double>(stats.dropped),
               "samples");
    if (!writer.WriteTo(json_path)) return 1;
  }

  if (check) {
    if (overhead_pct > max_pct) {
      std::fprintf(stderr,
                   "FAIL: 99 Hz profiling overhead %.2f%% exceeds the "
                   "%.2f%% budget\n",
                   overhead_pct, max_pct);
      return 1;
    }
    if (stats.samples == 0) {
      std::fprintf(stderr, "FAIL: profiler collected no samples\n");
      return 1;
    }
    std::printf("OK: overhead %.2f%% within %.2f%% budget, %llu samples\n",
                overhead_pct, max_pct,
                static_cast<unsigned long long>(stats.samples));
  }
  return 0;
}
