# Empty dependencies file for vf2boost.
# This may be replaced when dependencies are built.
