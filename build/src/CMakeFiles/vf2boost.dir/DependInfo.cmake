
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/bigint/bigint.cc" "src/CMakeFiles/vf2boost.dir/bigint/bigint.cc.o" "gcc" "src/CMakeFiles/vf2boost.dir/bigint/bigint.cc.o.d"
  "/root/repo/src/bigint/modarith.cc" "src/CMakeFiles/vf2boost.dir/bigint/modarith.cc.o" "gcc" "src/CMakeFiles/vf2boost.dir/bigint/modarith.cc.o.d"
  "/root/repo/src/bigint/prime.cc" "src/CMakeFiles/vf2boost.dir/bigint/prime.cc.o" "gcc" "src/CMakeFiles/vf2boost.dir/bigint/prime.cc.o.d"
  "/root/repo/src/common/bytes.cc" "src/CMakeFiles/vf2boost.dir/common/bytes.cc.o" "gcc" "src/CMakeFiles/vf2boost.dir/common/bytes.cc.o.d"
  "/root/repo/src/common/logging.cc" "src/CMakeFiles/vf2boost.dir/common/logging.cc.o" "gcc" "src/CMakeFiles/vf2boost.dir/common/logging.cc.o.d"
  "/root/repo/src/common/status.cc" "src/CMakeFiles/vf2boost.dir/common/status.cc.o" "gcc" "src/CMakeFiles/vf2boost.dir/common/status.cc.o.d"
  "/root/repo/src/common/threadpool.cc" "src/CMakeFiles/vf2boost.dir/common/threadpool.cc.o" "gcc" "src/CMakeFiles/vf2boost.dir/common/threadpool.cc.o.d"
  "/root/repo/src/crypto/accumulator.cc" "src/CMakeFiles/vf2boost.dir/crypto/accumulator.cc.o" "gcc" "src/CMakeFiles/vf2boost.dir/crypto/accumulator.cc.o.d"
  "/root/repo/src/crypto/backend.cc" "src/CMakeFiles/vf2boost.dir/crypto/backend.cc.o" "gcc" "src/CMakeFiles/vf2boost.dir/crypto/backend.cc.o.d"
  "/root/repo/src/crypto/encoding.cc" "src/CMakeFiles/vf2boost.dir/crypto/encoding.cc.o" "gcc" "src/CMakeFiles/vf2boost.dir/crypto/encoding.cc.o.d"
  "/root/repo/src/crypto/packing.cc" "src/CMakeFiles/vf2boost.dir/crypto/packing.cc.o" "gcc" "src/CMakeFiles/vf2boost.dir/crypto/packing.cc.o.d"
  "/root/repo/src/crypto/paillier.cc" "src/CMakeFiles/vf2boost.dir/crypto/paillier.cc.o" "gcc" "src/CMakeFiles/vf2boost.dir/crypto/paillier.cc.o.d"
  "/root/repo/src/data/binning.cc" "src/CMakeFiles/vf2boost.dir/data/binning.cc.o" "gcc" "src/CMakeFiles/vf2boost.dir/data/binning.cc.o.d"
  "/root/repo/src/data/dataset.cc" "src/CMakeFiles/vf2boost.dir/data/dataset.cc.o" "gcc" "src/CMakeFiles/vf2boost.dir/data/dataset.cc.o.d"
  "/root/repo/src/data/gk_sketch.cc" "src/CMakeFiles/vf2boost.dir/data/gk_sketch.cc.o" "gcc" "src/CMakeFiles/vf2boost.dir/data/gk_sketch.cc.o.d"
  "/root/repo/src/data/io.cc" "src/CMakeFiles/vf2boost.dir/data/io.cc.o" "gcc" "src/CMakeFiles/vf2boost.dir/data/io.cc.o.d"
  "/root/repo/src/data/matrix.cc" "src/CMakeFiles/vf2boost.dir/data/matrix.cc.o" "gcc" "src/CMakeFiles/vf2boost.dir/data/matrix.cc.o.d"
  "/root/repo/src/data/partition.cc" "src/CMakeFiles/vf2boost.dir/data/partition.cc.o" "gcc" "src/CMakeFiles/vf2boost.dir/data/partition.cc.o.d"
  "/root/repo/src/data/psi.cc" "src/CMakeFiles/vf2boost.dir/data/psi.cc.o" "gcc" "src/CMakeFiles/vf2boost.dir/data/psi.cc.o.d"
  "/root/repo/src/data/quantile.cc" "src/CMakeFiles/vf2boost.dir/data/quantile.cc.o" "gcc" "src/CMakeFiles/vf2boost.dir/data/quantile.cc.o.d"
  "/root/repo/src/data/synthetic.cc" "src/CMakeFiles/vf2boost.dir/data/synthetic.cc.o" "gcc" "src/CMakeFiles/vf2boost.dir/data/synthetic.cc.o.d"
  "/root/repo/src/fed/channel.cc" "src/CMakeFiles/vf2boost.dir/fed/channel.cc.o" "gcc" "src/CMakeFiles/vf2boost.dir/fed/channel.cc.o.d"
  "/root/repo/src/fed/enc_histogram.cc" "src/CMakeFiles/vf2boost.dir/fed/enc_histogram.cc.o" "gcc" "src/CMakeFiles/vf2boost.dir/fed/enc_histogram.cc.o.d"
  "/root/repo/src/fed/fed_trainer.cc" "src/CMakeFiles/vf2boost.dir/fed/fed_trainer.cc.o" "gcc" "src/CMakeFiles/vf2boost.dir/fed/fed_trainer.cc.o.d"
  "/root/repo/src/fed/message.cc" "src/CMakeFiles/vf2boost.dir/fed/message.cc.o" "gcc" "src/CMakeFiles/vf2boost.dir/fed/message.cc.o.d"
  "/root/repo/src/fed/party_a.cc" "src/CMakeFiles/vf2boost.dir/fed/party_a.cc.o" "gcc" "src/CMakeFiles/vf2boost.dir/fed/party_a.cc.o.d"
  "/root/repo/src/fed/party_b.cc" "src/CMakeFiles/vf2boost.dir/fed/party_b.cc.o" "gcc" "src/CMakeFiles/vf2boost.dir/fed/party_b.cc.o.d"
  "/root/repo/src/fed/placement.cc" "src/CMakeFiles/vf2boost.dir/fed/placement.cc.o" "gcc" "src/CMakeFiles/vf2boost.dir/fed/placement.cc.o.d"
  "/root/repo/src/fed/protocol.cc" "src/CMakeFiles/vf2boost.dir/fed/protocol.cc.o" "gcc" "src/CMakeFiles/vf2boost.dir/fed/protocol.cc.o.d"
  "/root/repo/src/fed/serving.cc" "src/CMakeFiles/vf2boost.dir/fed/serving.cc.o" "gcc" "src/CMakeFiles/vf2boost.dir/fed/serving.cc.o.d"
  "/root/repo/src/fedlr/fed_lr.cc" "src/CMakeFiles/vf2boost.dir/fedlr/fed_lr.cc.o" "gcc" "src/CMakeFiles/vf2boost.dir/fedlr/fed_lr.cc.o.d"
  "/root/repo/src/fedlr/lr_model.cc" "src/CMakeFiles/vf2boost.dir/fedlr/lr_model.cc.o" "gcc" "src/CMakeFiles/vf2boost.dir/fedlr/lr_model.cc.o.d"
  "/root/repo/src/gbdt/histogram.cc" "src/CMakeFiles/vf2boost.dir/gbdt/histogram.cc.o" "gcc" "src/CMakeFiles/vf2boost.dir/gbdt/histogram.cc.o.d"
  "/root/repo/src/gbdt/importance.cc" "src/CMakeFiles/vf2boost.dir/gbdt/importance.cc.o" "gcc" "src/CMakeFiles/vf2boost.dir/gbdt/importance.cc.o.d"
  "/root/repo/src/gbdt/loss.cc" "src/CMakeFiles/vf2boost.dir/gbdt/loss.cc.o" "gcc" "src/CMakeFiles/vf2boost.dir/gbdt/loss.cc.o.d"
  "/root/repo/src/gbdt/model_io.cc" "src/CMakeFiles/vf2boost.dir/gbdt/model_io.cc.o" "gcc" "src/CMakeFiles/vf2boost.dir/gbdt/model_io.cc.o.d"
  "/root/repo/src/gbdt/split.cc" "src/CMakeFiles/vf2boost.dir/gbdt/split.cc.o" "gcc" "src/CMakeFiles/vf2boost.dir/gbdt/split.cc.o.d"
  "/root/repo/src/gbdt/trainer.cc" "src/CMakeFiles/vf2boost.dir/gbdt/trainer.cc.o" "gcc" "src/CMakeFiles/vf2boost.dir/gbdt/trainer.cc.o.d"
  "/root/repo/src/gbdt/tree.cc" "src/CMakeFiles/vf2boost.dir/gbdt/tree.cc.o" "gcc" "src/CMakeFiles/vf2boost.dir/gbdt/tree.cc.o.d"
  "/root/repo/src/metrics/metrics.cc" "src/CMakeFiles/vf2boost.dir/metrics/metrics.cc.o" "gcc" "src/CMakeFiles/vf2boost.dir/metrics/metrics.cc.o.d"
  "/root/repo/src/sim/cost_model.cc" "src/CMakeFiles/vf2boost.dir/sim/cost_model.cc.o" "gcc" "src/CMakeFiles/vf2boost.dir/sim/cost_model.cc.o.d"
  "/root/repo/src/sim/event_sim.cc" "src/CMakeFiles/vf2boost.dir/sim/event_sim.cc.o" "gcc" "src/CMakeFiles/vf2boost.dir/sim/event_sim.cc.o.d"
  "/root/repo/src/sim/gantt.cc" "src/CMakeFiles/vf2boost.dir/sim/gantt.cc.o" "gcc" "src/CMakeFiles/vf2boost.dir/sim/gantt.cc.o.d"
  "/root/repo/src/sim/protocol_sim.cc" "src/CMakeFiles/vf2boost.dir/sim/protocol_sim.cc.o" "gcc" "src/CMakeFiles/vf2boost.dir/sim/protocol_sim.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
