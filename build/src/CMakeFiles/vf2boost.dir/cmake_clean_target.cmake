file(REMOVE_RECURSE
  "libvf2boost.a"
)
