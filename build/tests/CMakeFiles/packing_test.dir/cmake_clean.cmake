file(REMOVE_RECURSE
  "CMakeFiles/packing_test.dir/packing_test.cc.o"
  "CMakeFiles/packing_test.dir/packing_test.cc.o.d"
  "packing_test"
  "packing_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/packing_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
