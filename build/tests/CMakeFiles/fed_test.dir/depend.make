# Empty dependencies file for fed_test.
# This may be replaced when dependencies are built.
