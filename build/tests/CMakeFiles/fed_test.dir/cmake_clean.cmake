file(REMOVE_RECURSE
  "CMakeFiles/fed_test.dir/fed_test.cc.o"
  "CMakeFiles/fed_test.dir/fed_test.cc.o.d"
  "fed_test"
  "fed_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fed_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
