# Empty dependencies file for gbdt_features_test.
# This may be replaced when dependencies are built.
