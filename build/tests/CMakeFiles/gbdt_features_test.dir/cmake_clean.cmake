file(REMOVE_RECURSE
  "CMakeFiles/gbdt_features_test.dir/gbdt_features_test.cc.o"
  "CMakeFiles/gbdt_features_test.dir/gbdt_features_test.cc.o.d"
  "gbdt_features_test"
  "gbdt_features_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gbdt_features_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
