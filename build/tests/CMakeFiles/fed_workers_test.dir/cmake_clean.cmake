file(REMOVE_RECURSE
  "CMakeFiles/fed_workers_test.dir/fed_workers_test.cc.o"
  "CMakeFiles/fed_workers_test.dir/fed_workers_test.cc.o.d"
  "fed_workers_test"
  "fed_workers_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fed_workers_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
