# Empty dependencies file for fed_workers_test.
# This may be replaced when dependencies are built.
