file(REMOVE_RECURSE
  "CMakeFiles/channel_test.dir/channel_test.cc.o"
  "CMakeFiles/channel_test.dir/channel_test.cc.o.d"
  "channel_test"
  "channel_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/channel_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
