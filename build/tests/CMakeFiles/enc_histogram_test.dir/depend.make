# Empty dependencies file for enc_histogram_test.
# This may be replaced when dependencies are built.
