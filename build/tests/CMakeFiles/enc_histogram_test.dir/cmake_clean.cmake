file(REMOVE_RECURSE
  "CMakeFiles/enc_histogram_test.dir/enc_histogram_test.cc.o"
  "CMakeFiles/enc_histogram_test.dir/enc_histogram_test.cc.o.d"
  "enc_histogram_test"
  "enc_histogram_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/enc_histogram_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
