# Empty dependencies file for gbdt_test.
# This may be replaced when dependencies are built.
