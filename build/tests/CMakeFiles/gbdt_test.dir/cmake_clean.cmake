file(REMOVE_RECURSE
  "CMakeFiles/gbdt_test.dir/gbdt_test.cc.o"
  "CMakeFiles/gbdt_test.dir/gbdt_test.cc.o.d"
  "gbdt_test"
  "gbdt_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gbdt_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
