file(REMOVE_RECURSE
  "CMakeFiles/gk_sketch_test.dir/gk_sketch_test.cc.o"
  "CMakeFiles/gk_sketch_test.dir/gk_sketch_test.cc.o.d"
  "gk_sketch_test"
  "gk_sketch_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gk_sketch_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
