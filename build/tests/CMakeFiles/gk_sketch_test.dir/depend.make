# Empty dependencies file for gk_sketch_test.
# This may be replaced when dependencies are built.
