file(REMOVE_RECURSE
  "CMakeFiles/protocol_test.dir/protocol_test.cc.o"
  "CMakeFiles/protocol_test.dir/protocol_test.cc.o.d"
  "protocol_test"
  "protocol_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/protocol_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
