# Empty dependencies file for bigint_oracle_test.
# This may be replaced when dependencies are built.
