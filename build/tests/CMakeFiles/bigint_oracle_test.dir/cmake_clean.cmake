file(REMOVE_RECURSE
  "CMakeFiles/bigint_oracle_test.dir/bigint_oracle_test.cc.o"
  "CMakeFiles/bigint_oracle_test.dir/bigint_oracle_test.cc.o.d"
  "bigint_oracle_test"
  "bigint_oracle_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bigint_oracle_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
