file(REMOVE_RECURSE
  "CMakeFiles/fedlr_test.dir/fedlr_test.cc.o"
  "CMakeFiles/fedlr_test.dir/fedlr_test.cc.o.d"
  "fedlr_test"
  "fedlr_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fedlr_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
