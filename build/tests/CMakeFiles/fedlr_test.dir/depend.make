# Empty dependencies file for fedlr_test.
# This may be replaced when dependencies are built.
