file(REMOVE_RECURSE
  "CMakeFiles/tree_test.dir/tree_test.cc.o"
  "CMakeFiles/tree_test.dir/tree_test.cc.o.d"
  "tree_test"
  "tree_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tree_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
