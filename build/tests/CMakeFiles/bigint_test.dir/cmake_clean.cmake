file(REMOVE_RECURSE
  "CMakeFiles/bigint_test.dir/bigint_test.cc.o"
  "CMakeFiles/bigint_test.dir/bigint_test.cc.o.d"
  "bigint_test"
  "bigint_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bigint_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
