file(REMOVE_RECURSE
  "CMakeFiles/accumulator_test.dir/accumulator_test.cc.o"
  "CMakeFiles/accumulator_test.dir/accumulator_test.cc.o.d"
  "accumulator_test"
  "accumulator_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/accumulator_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
