# Empty dependencies file for accumulator_test.
# This may be replaced when dependencies are built.
