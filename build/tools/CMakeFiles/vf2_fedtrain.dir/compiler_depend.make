# Empty compiler generated dependencies file for vf2_fedtrain.
# This may be replaced when dependencies are built.
