file(REMOVE_RECURSE
  "CMakeFiles/vf2_fedtrain.dir/vf2_fedtrain.cc.o"
  "CMakeFiles/vf2_fedtrain.dir/vf2_fedtrain.cc.o.d"
  "vf2_fedtrain"
  "vf2_fedtrain.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vf2_fedtrain.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
