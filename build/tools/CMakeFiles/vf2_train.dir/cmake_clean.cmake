file(REMOVE_RECURSE
  "CMakeFiles/vf2_train.dir/vf2_train.cc.o"
  "CMakeFiles/vf2_train.dir/vf2_train.cc.o.d"
  "vf2_train"
  "vf2_train.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vf2_train.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
