# Empty compiler generated dependencies file for vf2_train.
# This may be replaced when dependencies are built.
