# Empty dependencies file for vf2_datagen.
# This may be replaced when dependencies are built.
