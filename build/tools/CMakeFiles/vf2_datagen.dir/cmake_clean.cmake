file(REMOVE_RECURSE
  "CMakeFiles/vf2_datagen.dir/vf2_datagen.cc.o"
  "CMakeFiles/vf2_datagen.dir/vf2_datagen.cc.o.d"
  "vf2_datagen"
  "vf2_datagen.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vf2_datagen.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
