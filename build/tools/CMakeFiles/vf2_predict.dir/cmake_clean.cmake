file(REMOVE_RECURSE
  "CMakeFiles/vf2_predict.dir/vf2_predict.cc.o"
  "CMakeFiles/vf2_predict.dir/vf2_predict.cc.o.d"
  "vf2_predict"
  "vf2_predict.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vf2_predict.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
