# Empty dependencies file for vf2_predict.
# This may be replaced when dependencies are built.
