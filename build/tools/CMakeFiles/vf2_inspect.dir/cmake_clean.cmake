file(REMOVE_RECURSE
  "CMakeFiles/vf2_inspect.dir/vf2_inspect.cc.o"
  "CMakeFiles/vf2_inspect.dir/vf2_inspect.cc.o.d"
  "vf2_inspect"
  "vf2_inspect.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vf2_inspect.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
