# Empty compiler generated dependencies file for vf2_inspect.
# This may be replaced when dependencies are built.
