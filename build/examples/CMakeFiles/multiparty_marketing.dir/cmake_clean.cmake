file(REMOVE_RECURSE
  "CMakeFiles/multiparty_marketing.dir/multiparty_marketing.cc.o"
  "CMakeFiles/multiparty_marketing.dir/multiparty_marketing.cc.o.d"
  "multiparty_marketing"
  "multiparty_marketing.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/multiparty_marketing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
