# Empty dependencies file for multiparty_marketing.
# This may be replaced when dependencies are built.
