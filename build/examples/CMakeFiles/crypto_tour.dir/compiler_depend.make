# Empty compiler generated dependencies file for crypto_tour.
# This may be replaced when dependencies are built.
