file(REMOVE_RECURSE
  "CMakeFiles/crypto_tour.dir/crypto_tour.cc.o"
  "CMakeFiles/crypto_tour.dir/crypto_tour.cc.o.d"
  "crypto_tour"
  "crypto_tour.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/crypto_tour.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
