file(REMOVE_RECURSE
  "CMakeFiles/credit_scoring.dir/credit_scoring.cc.o"
  "CMakeFiles/credit_scoring.dir/credit_scoring.cc.o.d"
  "credit_scoring"
  "credit_scoring.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/credit_scoring.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
