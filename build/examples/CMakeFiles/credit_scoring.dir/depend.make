# Empty dependencies file for credit_scoring.
# This may be replaced when dependencies are built.
