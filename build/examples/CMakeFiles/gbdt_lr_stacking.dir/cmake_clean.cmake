file(REMOVE_RECURSE
  "CMakeFiles/gbdt_lr_stacking.dir/gbdt_lr_stacking.cc.o"
  "CMakeFiles/gbdt_lr_stacking.dir/gbdt_lr_stacking.cc.o.d"
  "gbdt_lr_stacking"
  "gbdt_lr_stacking.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gbdt_lr_stacking.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
