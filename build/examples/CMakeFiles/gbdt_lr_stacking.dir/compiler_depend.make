# Empty compiler generated dependencies file for gbdt_lr_stacking.
# This may be replaced when dependencies are built.
