file(REMOVE_RECURSE
  "CMakeFiles/federated_serving.dir/federated_serving.cc.o"
  "CMakeFiles/federated_serving.dir/federated_serving.cc.o.d"
  "federated_serving"
  "federated_serving.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/federated_serving.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
