# Empty dependencies file for federated_serving.
# This may be replaced when dependencies are built.
