file(REMOVE_RECURSE
  "CMakeFiles/federated_lr.dir/federated_lr.cc.o"
  "CMakeFiles/federated_lr.dir/federated_lr.cc.o.d"
  "federated_lr"
  "federated_lr.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/federated_lr.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
