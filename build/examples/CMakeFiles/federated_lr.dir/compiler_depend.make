# Empty compiler generated dependencies file for federated_lr.
# This may be replaced when dependencies are built.
