# Empty dependencies file for bench_lr_extension.
# This may be replaced when dependencies are built.
