file(REMOVE_RECURSE
  "CMakeFiles/bench_lr_extension.dir/bench_lr_extension.cc.o"
  "CMakeFiles/bench_lr_extension.dir/bench_lr_extension.cc.o.d"
  "bench_lr_extension"
  "bench_lr_extension.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_lr_extension.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
