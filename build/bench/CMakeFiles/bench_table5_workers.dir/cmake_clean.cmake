file(REMOVE_RECURSE
  "CMakeFiles/bench_table5_workers.dir/bench_table5_workers.cc.o"
  "CMakeFiles/bench_table5_workers.dir/bench_table5_workers.cc.o.d"
  "bench_table5_workers"
  "bench_table5_workers.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table5_workers.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
