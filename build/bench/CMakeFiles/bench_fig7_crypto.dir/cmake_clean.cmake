file(REMOVE_RECURSE
  "CMakeFiles/bench_fig7_crypto.dir/bench_fig7_crypto.cc.o"
  "CMakeFiles/bench_fig7_crypto.dir/bench_fig7_crypto.cc.o.d"
  "bench_fig7_crypto"
  "bench_fig7_crypto.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig7_crypto.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
