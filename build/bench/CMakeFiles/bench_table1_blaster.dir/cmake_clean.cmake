file(REMOVE_RECURSE
  "CMakeFiles/bench_table1_blaster.dir/bench_table1_blaster.cc.o"
  "CMakeFiles/bench_table1_blaster.dir/bench_table1_blaster.cc.o.d"
  "bench_table1_blaster"
  "bench_table1_blaster.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table1_blaster.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
