file(REMOVE_RECURSE
  "CMakeFiles/bench_fig45_gantt.dir/bench_fig45_gantt.cc.o"
  "CMakeFiles/bench_fig45_gantt.dir/bench_fig45_gantt.cc.o.d"
  "bench_fig45_gantt"
  "bench_fig45_gantt.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig45_gantt.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
