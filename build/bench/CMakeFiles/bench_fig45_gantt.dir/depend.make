# Empty dependencies file for bench_fig45_gantt.
# This may be replaced when dependencies are built.
