# Empty compiler generated dependencies file for bench_ablation_crypto.
# This may be replaced when dependencies are built.
