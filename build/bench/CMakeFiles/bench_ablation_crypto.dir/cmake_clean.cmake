file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_crypto.dir/bench_ablation_crypto.cc.o"
  "CMakeFiles/bench_ablation_crypto.dir/bench_ablation_crypto.cc.o.d"
  "bench_ablation_crypto"
  "bench_ablation_crypto.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_crypto.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
