file(REMOVE_RECURSE
  "CMakeFiles/bench_table6_parties.dir/bench_table6_parties.cc.o"
  "CMakeFiles/bench_table6_parties.dir/bench_table6_parties.cc.o.d"
  "bench_table6_parties"
  "bench_table6_parties.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table6_parties.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
