file(REMOVE_RECURSE
  "CMakeFiles/bench_table2_optimistic.dir/bench_table2_optimistic.cc.o"
  "CMakeFiles/bench_table2_optimistic.dir/bench_table2_optimistic.cc.o.d"
  "bench_table2_optimistic"
  "bench_table2_optimistic.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table2_optimistic.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
