file(REMOVE_RECURSE
  "CMakeFiles/bench_table4_end2end.dir/bench_table4_end2end.cc.o"
  "CMakeFiles/bench_table4_end2end.dir/bench_table4_end2end.cc.o.d"
  "bench_table4_end2end"
  "bench_table4_end2end.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table4_end2end.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
