# Empty dependencies file for bench_table4_end2end.
# This may be replaced when dependencies are built.
